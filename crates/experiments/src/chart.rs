//! Terminal chart rendering for the figure binaries: horizontal bar
//! charts, stacked breakdown bars and line plots, so each `fig*`
//! binary produces an actual figure alongside its numeric table.

use protean_metrics::LatencyBreakdown;

/// Width of the plotting area in characters.
const BAR_WIDTH: usize = 50;

/// Renders a horizontal bar chart. Values are scaled to the maximum;
/// each bar is annotated with its value.
///
/// # Example
///
/// ```
/// use protean_experiments::chart::bar_chart;
/// bar_chart("SLO %", &[("PROTEAN".into(), 99.9), ("INFless".into(), 33.7)], 100.0);
/// ```
pub fn bar_chart(title: &str, entries: &[(String, f64)], scale_max: f64) {
    println!("  {title}");
    let label_width = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let max = entries
        .iter()
        .map(|&(_, v)| v)
        .fold(scale_max, f64::max)
        .max(1e-9);
    for (label, value) in entries {
        let filled = ((value / max) * BAR_WIDTH as f64).round().max(0.0) as usize;
        println!(
            "  {:<label_width$} |{}{} {:.2}",
            label,
            "#".repeat(filled.min(BAR_WIDTH)),
            " ".repeat(BAR_WIDTH.saturating_sub(filled)),
            value,
        );
    }
}

/// Renders the Figs. 2/6/11 stacked P99 breakdown as proportional bars
/// with a component legend (q = queueing, c = cold start,
/// i = interference, d = deficiency, m = minimum execution).
pub fn stacked_breakdown_chart(entries: &[(String, LatencyBreakdown)]) {
    let label_width = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let max_total = entries
        .iter()
        .map(|(_, b)| b.total_ms())
        .fold(1e-9, f64::max);
    println!("  P99 composition  [q]ueueing [c]old [i]nterference [d]eficiency [m]in-exec");
    for (label, b) in entries {
        let mut bar = String::new();
        let mut emitted = 0usize;
        let total_width = ((b.total_ms() / max_total) * BAR_WIDTH as f64).round() as usize;
        let components = [
            ('q', b.queueing_ms),
            ('c', b.cold_start_ms),
            ('i', b.interference_ms),
            ('d', b.deficiency_ms),
            ('m', b.min_exec_ms),
        ];
        let total = b.total_ms().max(1e-9);
        for (ch, v) in components {
            let w = ((v / total) * total_width as f64).round() as usize;
            bar.extend(std::iter::repeat_n(ch, w));
            emitted += w;
        }
        // Rounding may under/overshoot by a character or two.
        bar.truncate(total_width.min(BAR_WIDTH));
        if emitted < total_width {
            bar.extend(std::iter::repeat_n('m', total_width - emitted));
        }
        println!(
            "  {:<label_width$} |{:<BAR_WIDTH$} {:.1} ms",
            label,
            bar,
            b.total_ms(),
        );
    }
}

/// Renders `(x, y)` series as a fixed-size scatter/line plot with a
/// shared y-axis; each series gets its own glyph. Used for the Fig. 8
/// CDFs and the Fig. 7 timeline.
pub fn line_plot(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[(char, &[(f64, f64)])],
    height: usize,
) {
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() || height == 0 {
        println!("  {title}: (no data)");
        return;
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    let width = BAR_WIDTH + 20;
    let mut grid = vec![vec![' '; width]; height];
    for (glyph, pts) in series {
        for &(x, y) in *pts {
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let r = height - 1 - row.min(height - 1);
            grid[r][col.min(width - 1)] = *glyph;
        }
    }
    println!("  {title}");
    println!("  {y_label} {y_max:.1}");
    for row in grid {
        let line: String = row.into_iter().collect();
        println!("  |{line}");
    }
    println!("  {y_min:.1} +{}", "-".repeat(width));
    println!("   {x_label}: {x_min:.1} .. {x_max:.1}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(q: f64, m: f64) -> LatencyBreakdown {
        LatencyBreakdown {
            queueing_ms: q,
            min_exec_ms: m,
            ..LatencyBreakdown::default()
        }
    }

    #[test]
    fn bar_chart_handles_plain_and_zero_values() {
        bar_chart("t", &[("a".into(), 50.0), ("b".into(), 0.0)], 100.0);
        bar_chart("empty", &[], 100.0);
        // Values above the scale max must not overflow the bar area.
        bar_chart("over", &[("x".into(), 250.0)], 100.0);
    }

    #[test]
    fn stacked_chart_is_proportional() {
        stacked_breakdown_chart(&[
            ("heavy queue".into(), breakdown(90.0, 10.0)),
            ("pure exec".into(), breakdown(0.0, 100.0)),
            ("empty".into(), breakdown(0.0, 0.0)),
        ]);
    }

    #[test]
    fn line_plot_handles_degenerate_inputs() {
        line_plot("empty", "x", "y", &[], 5);
        line_plot("point", "x", "y", &[('*', &[(1.0, 1.0)])], 5);
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, (i * i) as f64)).collect();
        line_plot("quadratic", "x", "y", &[('*', &pts)], 10);
    }
}
