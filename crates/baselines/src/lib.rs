//! The comparison schemes PROTEAN is evaluated against.
//!
//! Each baseline reproduces the *request-serving policy* of a published
//! system, as characterised in the paper (§5 "Evaluated schemes" and the
//! §2.2 motivational study):
//!
//! | Scheme | GPU setup | Sharing | Placement |
//! |---|---|---|---|
//! | `Molecule (beta)` / `No MPS or MIG` | whole GPU (`7g`) | time sharing | FIFO |
//! | `INFless/Llama` / `MPS Only` | whole GPU (`7g`) | MPS | consolidate everything |
//! | `MIG Only` | static `(4g, 3g)` | time sharing | any idle slice |
//! | `MPS+MIG` | static `(4g, 3g)` | MPS | even round-robin |
//! | `'Smart' MPS+MIG` | static `(4g, 3g)` | MPS | strict→4g, BE→3g |
//! | `Naïve Slicing` | static `(4g, 2g, 1g)` | MPS | balance by slice memory |
//! | `GPUlet` | whole GPU (`7g`) | MPS + SM caps | strict ≤62.5% SMs, BE the rest |
//!
//! The `Spot Only` scheme of Fig. 9 is PROTEAN under a different
//! procurement policy, so it lives in the cluster configuration rather
//! than here; the `Oracle` of Fig. 17 is in the `protean` crate.
//!
//! # Example
//!
//! ```
//! use protean_baselines::Baseline;
//! use protean_cluster::SchemeBuilder;
//!
//! let b = Baseline::InflessLlama;
//! assert_eq!(SchemeBuilder::name(&b), "INFless/Llama");
//! let mut scheme = b.build(0);
//! assert_eq!(scheme.initial_geometry().to_string(), "(7g)");
//! ```

use protean_cluster::{BatchView, DispatchPolicy, Placement, PlacementCtx, Scheme, SchemeBuilder};
use protean_gpu::{Geometry, SharingMode, Slice};

/// The comparison schemes (see the crate docs for the mapping to the
/// paper's systems).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// *Molecule*'s GPU support: whole GPU, time sharing, no MPS.
    MoleculeBeta,
    /// *INFless* / *Llama*: whole GPU, MPS, everything consolidated.
    InflessLlama,
    /// Static MIG slices + MPS, requests balanced by slice memory.
    NaiveSlicing,
    /// Static `(4g, 3g)` slices, time-shared (§2.2 motivational).
    MigOnly,
    /// Static `(4g, 3g)` slices, MPS, even split (§2.2 motivational).
    MpsMigEven,
    /// The §2.2 straw man: strict on the 4g, best-effort on the 3g.
    SmartMpsMig,
    /// *GPUlet*: MPS with carefully allocated SM partitions — strict
    /// capped at ~62.5% of SMs, best-effort at the remaining 37.5%
    /// (§6.2 "strategic MPS-only usage").
    Gpulet,
}

impl Baseline {
    /// All baselines, in the order the figures list them.
    pub const ALL: [Baseline; 7] = [
        Baseline::MoleculeBeta,
        Baseline::InflessLlama,
        Baseline::NaiveSlicing,
        Baseline::MigOnly,
        Baseline::MpsMigEven,
        Baseline::SmartMpsMig,
        Baseline::Gpulet,
    ];

    /// The three comparison schemes of the primary evaluation (Figs.
    /// 5–15): Molecule (beta), INFless/Llama and Naïve Slicing.
    pub const PRIMARY: [Baseline; 3] = [
        Baseline::MoleculeBeta,
        Baseline::InflessLlama,
        Baseline::NaiveSlicing,
    ];

    /// The scheme's figure label.
    pub fn label(self) -> &'static str {
        match self {
            Baseline::MoleculeBeta => "Molecule (beta)",
            Baseline::InflessLlama => "INFless/Llama",
            Baseline::NaiveSlicing => "Naive Slicing",
            Baseline::MigOnly => "MIG Only",
            Baseline::MpsMigEven => "MPS+MIG",
            Baseline::SmartMpsMig => "'Smart' MPS+MIG",
            Baseline::Gpulet => "GPUlet",
        }
    }
}

/// GPUlet's SM cap for strict requests (paper: "~60-65% upper bound").
const GPULET_STRICT_SM_CAP: f64 = 0.625;

/// Per-worker instance of a baseline scheme.
#[derive(Debug, Clone)]
pub struct BaselineScheme {
    kind: Baseline,
    /// Round-robin cursor for the even-split schemes.
    rr: usize,
}

fn fits(slice: &Slice, mem_gb: f64) -> bool {
    slice.mem_available_gb() + 1e-9 >= mem_gb
}

impl Scheme for BaselineScheme {
    fn name(&self) -> &'static str {
        self.kind.label()
    }

    fn initial_geometry(&self) -> Geometry {
        match self.kind {
            Baseline::MoleculeBeta | Baseline::InflessLlama | Baseline::Gpulet => Geometry::full(),
            Baseline::MigOnly | Baseline::MpsMigEven | Baseline::SmartMpsMig => Geometry::g4_g3(),
            Baseline::NaiveSlicing => Geometry::g4_g2_g1(),
        }
    }

    fn sharing_mode(&self) -> SharingMode {
        match self.kind {
            Baseline::MoleculeBeta | Baseline::MigOnly => SharingMode::TimeShared,
            _ => SharingMode::Mps,
        }
    }

    fn reorders(&self) -> bool {
        // GPUlet explicitly prioritises SLO-bearing requests; the §2.2
        // straw man isolates strict requests by construction. The other
        // baselines serve FIFO, as characterised in §5.
        matches!(self.kind, Baseline::Gpulet | Baseline::SmartMpsMig)
    }

    fn place(&mut self, ctx: &PlacementCtx<'_>, batch: &BatchView) -> Option<Placement> {
        let slices = ctx.gpu.slices();
        let mem = ctx.catalog.profile(batch.model).mem_gb;
        match self.kind {
            Baseline::MoleculeBeta => {
                // One batch at a time on the whole GPU.
                (slices[0].is_idle() && fits(&slices[0], mem)).then(|| Placement::on_slice(0))
            }
            Baseline::InflessLlama => {
                // Consolidate everything on the full GPU under MPS.
                fits(&slices[0], mem).then(|| Placement::on_slice(0))
            }
            Baseline::MigOnly => {
                // Time-shared slices: any idle slice with room, spread
                // round-robin.
                let n = slices.len();
                for k in 0..n {
                    let i = (self.rr + k) % n;
                    if slices[i].is_idle() && fits(&slices[i], mem) {
                        self.rr = (i + 1) % n;
                        return Some(Placement::on_slice(i));
                    }
                }
                None
            }
            Baseline::MpsMigEven => {
                // Even split across slices via round-robin.
                let n = slices.len();
                for k in 0..n {
                    let i = (self.rr + k) % n;
                    if fits(&slices[i], mem) {
                        self.rr = (i + 1) % n;
                        return Some(Placement::on_slice(i));
                    }
                }
                None
            }
            Baseline::SmartMpsMig => {
                // Strict on the largest slice, best-effort on the other;
                // fall back to any slice with room rather than stall.
                let preferred = if batch.strict { 0 } else { slices.len() - 1 };
                if fits(&slices[preferred], mem) {
                    return Some(Placement::on_slice(preferred));
                }
                (0..slices.len())
                    .find(|&i| fits(&slices[i], mem))
                    .map(Placement::on_slice)
            }
            Baseline::NaiveSlicing => {
                // Load-balance by slice memory: the fitting slice with
                // the lowest occupancy ratio.
                let mut best: Option<(f64, usize)> = None;
                for (i, s) in slices.iter().enumerate() {
                    if !fits(s, mem) {
                        continue;
                    }
                    let ratio = s.mem_used_gb() / s.profile().mem_gb();
                    if best.is_none_or(|(r, _)| ratio < r) {
                        best = Some((ratio, i));
                    }
                }
                best.map(|(_, i)| Placement::on_slice(i))
            }
            Baseline::Gpulet => {
                // MPS with SM caps: the cap slows the job's compute
                // (Amdahl on the capped SM fraction) but does NOT
                // partition cache or memory bandwidth (§6.2) — the job
                // still moves the same bytes, just over a longer run,
                // so its bandwidth *rate* only drops by the stretch.
                if !fits(&slices[0], mem) {
                    return None;
                }
                let cap = if batch.strict {
                    GPULET_STRICT_SM_CAP
                } else {
                    1.0 - GPULET_STRICT_SM_CAP
                };
                let beta = ctx.catalog.profile(batch.model).deficiency_beta;
                let solo_scale = 1.0 / (1.0 - beta * (1.0 - cap));
                Some(Placement {
                    slice: 0,
                    fbr_scale: 1.0 / solo_scale,
                    solo_scale,
                })
            }
        }
    }
}

impl Scheme for Baseline {
    fn name(&self) -> &'static str {
        self.label()
    }
    fn initial_geometry(&self) -> Geometry {
        BaselineScheme { kind: *self, rr: 0 }.initial_geometry()
    }
    fn sharing_mode(&self) -> SharingMode {
        BaselineScheme { kind: *self, rr: 0 }.sharing_mode()
    }
    fn place(&mut self, ctx: &PlacementCtx<'_>, batch: &BatchView) -> Option<Placement> {
        BaselineScheme { kind: *self, rr: 0 }.place(ctx, batch)
    }
}

impl SchemeBuilder for Baseline {
    fn build(&self, _worker: usize) -> Box<dyn Scheme> {
        Box::new(BaselineScheme { kind: *self, rr: 0 })
    }

    fn name(&self) -> &'static str {
        self.label()
    }

    fn dispatch_policy(&self) -> DispatchPolicy {
        match self {
            // INFless/Llama maximise utilization by packing batches onto
            // as few GPUs as possible (§1: "consolidate excessive
            // workload batches on individual GPUs") with deep backlogs.
            Baseline::InflessLlama => DispatchPolicy::Consolidate { cap_batches: 10 },
            // GPUlet also packs (its gpu-let abstraction minimises the
            // GPUs used) but sizes allocations from profiled latency,
            // so it stops packing much earlier.
            Baseline::Gpulet => DispatchPolicy::Consolidate { cap_batches: 3 },
            _ => DispatchPolicy::LoadBalance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_gpu::{Gpu, GpuId, JobId, JobSpec};
    use protean_models::{Catalog, ModelId};
    use protean_sim::{SimDuration, SimTime};

    fn ctx_for<'a>(gpu: &'a Gpu, catalog: &'a Catalog) -> PlacementCtx<'a> {
        PlacementCtx {
            now: SimTime::ZERO,
            gpu,
            queued_be_mem_gb: 0.0,
            catalog,
        }
    }

    fn view(model: ModelId, strict: bool) -> BatchView {
        BatchView {
            model,
            strict,
            size: 128,
        }
    }

    fn gpu_for(b: Baseline) -> Gpu {
        let s = b.build(0);
        Gpu::new(
            GpuId(0),
            s.initial_geometry(),
            s.sharing_mode(),
            SimTime::ZERO,
        )
    }

    fn occupy(gpu: &mut Gpu, slice: usize, id: u64, mem: f64) {
        gpu.slice_mut(slice)
            .admit(
                SimTime::ZERO,
                JobSpec {
                    id: JobId(id),
                    solo: SimDuration::from_millis(100.0),
                    fbr: 0.2,
                    mem_gb: mem,
                },
            )
            .unwrap();
    }

    #[test]
    fn molecule_runs_one_batch_at_a_time() {
        let catalog = Catalog::new();
        let mut gpu = gpu_for(Baseline::MoleculeBeta);
        let mut s = Baseline::MoleculeBeta.build(0);
        let ctx = ctx_for(&gpu, &catalog);
        assert_eq!(
            s.place(&ctx, &view(ModelId::ResNet50, true))
                .map(|p| p.slice),
            Some(0)
        );
        occupy(&mut gpu, 0, 1, 6.0);
        let ctx = ctx_for(&gpu, &catalog);
        assert!(s.place(&ctx, &view(ModelId::ResNet50, true)).is_none());
    }

    #[test]
    fn infless_consolidates_until_memory_runs_out() {
        let catalog = Catalog::new();
        let mut gpu = gpu_for(Baseline::InflessLlama);
        let mut s = Baseline::InflessLlama.build(0);
        // 6 ResNet batches (6 GB each) fit in 40 GB; the 7th does not.
        for i in 0..6 {
            let ctx = ctx_for(&gpu, &catalog);
            assert!(s
                .place(&ctx, &view(ModelId::ResNet50, i % 2 == 0))
                .is_some());
            occupy(&mut gpu, 0, i, 6.0);
        }
        let ctx = ctx_for(&gpu, &catalog);
        assert!(s.place(&ctx, &view(ModelId::ResNet50, true)).is_none());
    }

    #[test]
    fn mig_only_requires_idle_slice() {
        let catalog = Catalog::new();
        let mut gpu = gpu_for(Baseline::MigOnly);
        let mut s = Baseline::MigOnly.build(0);
        let first = s
            .place(&ctx_for(&gpu, &catalog), &view(ModelId::MobileNet, true))
            .unwrap()
            .slice;
        occupy(&mut gpu, first, 1, 2.0);
        let second = s
            .place(&ctx_for(&gpu, &catalog), &view(ModelId::MobileNet, true))
            .unwrap()
            .slice;
        assert_ne!(first, second, "round-robin should move to the idle slice");
        occupy(&mut gpu, second, 2, 2.0);
        assert!(s
            .place(&ctx_for(&gpu, &catalog), &view(ModelId::MobileNet, true))
            .is_none());
    }

    #[test]
    fn mps_mig_even_round_robins() {
        let catalog = Catalog::new();
        let gpu = gpu_for(Baseline::MpsMigEven);
        let mut s = Baseline::MpsMigEven.build(0);
        let a = s
            .place(&ctx_for(&gpu, &catalog), &view(ModelId::MobileNet, true))
            .unwrap()
            .slice;
        let b = s
            .place(&ctx_for(&gpu, &catalog), &view(ModelId::MobileNet, false))
            .unwrap()
            .slice;
        assert_ne!(a, b);
    }

    #[test]
    fn smart_straw_man_isolates_classes() {
        let catalog = Catalog::new();
        let gpu = gpu_for(Baseline::SmartMpsMig);
        let mut s = Baseline::SmartMpsMig.build(0);
        let strict = s
            .place(&ctx_for(&gpu, &catalog), &view(ModelId::ResNet50, true))
            .unwrap()
            .slice;
        let be = s
            .place(&ctx_for(&gpu, &catalog), &view(ModelId::MobileNet, false))
            .unwrap()
            .slice;
        assert_eq!(strict, 0, "strict takes the 4g");
        assert_eq!(be, 1, "BE takes the 3g");
    }

    #[test]
    fn naive_slicing_balances_by_memory_ratio() {
        let catalog = Catalog::new();
        let mut gpu = gpu_for(Baseline::NaiveSlicing);
        let mut s = Baseline::NaiveSlicing.build(0);
        // Occupy the 4g to 50%: next ShuffleNet (2.5 GB) should go to an
        // emptier slice.
        occupy(&mut gpu, 0, 1, 10.0);
        let p = s
            .place(&ctx_for(&gpu, &catalog), &view(ModelId::ShuffleNetV2, true))
            .unwrap()
            .slice;
        assert_ne!(p, 0);
        // DPN 92 (13.7 GB) no longer fits anywhere: 4g has 10 GB free.
        assert!(s
            .place(&ctx_for(&gpu, &catalog), &view(ModelId::Dpn92, true))
            .is_none());
    }

    #[test]
    fn gpulet_caps_scale_fbr_and_solo() {
        let catalog = Catalog::new();
        let gpu = gpu_for(Baseline::Gpulet);
        let mut s = Baseline::Gpulet.build(0);
        let strict = s
            .place(&ctx_for(&gpu, &catalog), &view(ModelId::ResNet50, true))
            .unwrap();
        assert!(strict.solo_scale > 1.0, "capped SMs must slow the job");
        // Bandwidth rate drops only by the compute stretch (bandwidth
        // itself is not partitioned by SM caps).
        assert!((strict.fbr_scale - 1.0 / strict.solo_scale).abs() < 1e-12);
        let be = s
            .place(&ctx_for(&gpu, &catalog), &view(ModelId::MobileNet, false))
            .unwrap();
        // The BE cap (37.5% of SMs) stretches BE jobs more than the
        // strict cap stretches strict jobs of the same sensitivity.
        assert!(be.solo_scale > 1.0);
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(Baseline::MoleculeBeta.label(), "Molecule (beta)");
        assert_eq!(Baseline::InflessLlama.label(), "INFless/Llama");
        assert_eq!(Baseline::SmartMpsMig.label(), "'Smart' MPS+MIG");
        assert_eq!(Baseline::ALL.len(), 7);
        assert_eq!(Baseline::PRIMARY.len(), 3);
    }

    #[test]
    fn sharing_modes_match_characterisation() {
        use protean_gpu::SharingMode::*;
        let mode = |b: Baseline| b.build(0).sharing_mode();
        assert_eq!(mode(Baseline::MoleculeBeta), TimeShared);
        assert_eq!(mode(Baseline::MigOnly), TimeShared);
        assert_eq!(mode(Baseline::InflessLlama), Mps);
        assert_eq!(mode(Baseline::Gpulet), Mps);
    }
}
