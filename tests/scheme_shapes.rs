//! Qualitative-shape regression tests: the orderings the paper's
//! evaluation establishes must hold in the reproduction. These guard
//! the calibration — if a refactor breaks "PROTEAN beats INFless on HI
//! models", these fail before any figure is regenerated.

use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_experiments::{run_scheme, PaperSetup};
use protean_models::ModelId;

fn setup() -> PaperSetup {
    PaperSetup {
        duration_secs: 60.0,
        seed: 42,
    }
}

/// Fig. 5 shape: PROTEAN dominates every primary baseline on an HI
/// vision model, and INFless/Llama suffers the most interference.
#[test]
fn protean_beats_baselines_on_hi_vision() {
    let setup = setup();
    let config = setup.cluster();
    let trace = setup.wiki_trace(ModelId::ResNet50);
    let protean = run_scheme(&config, &ProteanBuilder::paper(), &trace);
    let infless = run_scheme(&config, &Baseline::InflessLlama, &trace);
    let molecule = run_scheme(&config, &Baseline::MoleculeBeta, &trace);
    let naive = run_scheme(&config, &Baseline::NaiveSlicing, &trace);
    assert!(
        protean.slo_compliance_pct > 95.0,
        "{}",
        protean.slo_compliance_pct
    );
    assert!(
        protean.slo_compliance_pct >= naive.slo_compliance_pct - 1.0,
        "PROTEAN {} vs Naive {}",
        protean.slo_compliance_pct,
        naive.slo_compliance_pct
    );
    assert!(
        protean.slo_compliance_pct > infless.slo_compliance_pct + 20.0,
        "PROTEAN {} vs INFless {}",
        protean.slo_compliance_pct,
        infless.slo_compliance_pct
    );
    assert!(
        protean.slo_compliance_pct >= molecule.slo_compliance_pct,
        "PROTEAN {} vs Molecule {}",
        protean.slo_compliance_pct,
        molecule.slo_compliance_pct
    );
    // Fig. 6 shape: INFless's tail is interference-dominated, Molecule's
    // queueing-dominated, and PROTEAN's has the least of both.
    assert!(infless.tail_breakdown.interference_ms > protean.tail_breakdown.interference_ms);
    assert!(molecule.tail_breakdown.queueing_ms > protean.tail_breakdown.queueing_ms);
    assert_eq!(molecule.tail_breakdown.interference_ms, 0.0);
}

/// Fig. 12 shape: the VHI language models sink MPS consolidation.
#[test]
fn infless_collapses_on_vhi_llm() {
    let setup = setup();
    let config = setup.cluster();
    let trace = setup.wiki_trace(ModelId::Bert);
    let protean = run_scheme(&config, &ProteanBuilder::paper(), &trace);
    let infless = run_scheme(&config, &Baseline::InflessLlama, &trace);
    assert!(
        protean.slo_compliance_pct > 85.0,
        "{}",
        protean.slo_compliance_pct
    );
    assert!(
        infless.slo_compliance_pct < 50.0,
        "{}",
        infless.slo_compliance_pct
    );
}

/// Fig. 13 shape: generative LLMs are the worst case for MPS-only
/// consolidation; PROTEAN stays serviceable.
#[test]
fn gpt_is_worst_case_for_mps_only() {
    let setup = setup();
    let config = setup.cluster();
    let trace = setup.wiki_trace(ModelId::Gpt1);
    let protean = run_scheme(&config, &ProteanBuilder::paper(), &trace);
    let infless = run_scheme(&config, &Baseline::InflessLlama, &trace);
    assert!(
        protean.slo_compliance_pct > 80.0,
        "{}",
        protean.slo_compliance_pct
    );
    assert!(
        infless.slo_compliance_pct < 30.0,
        "{}",
        infless.slo_compliance_pct
    );
}

/// Table 4 shape: in the 100%-strict HI case, PROTEAN keeps high
/// compliance while INFless/Llama collapses.
#[test]
fn all_strict_case_matches_table4_shape() {
    let setup = setup();
    let config = setup.cluster();
    let mut trace = setup.wiki_trace_with_ratio(ModelId::ResNet50, 1.0);
    trace.be_pool.clear();
    let protean = run_scheme(&config, &ProteanBuilder::paper(), &trace);
    let infless = run_scheme(&config, &Baseline::InflessLlama, &trace);
    assert!(
        protean.slo_compliance_pct > 90.0,
        "{}",
        protean.slo_compliance_pct
    );
    assert!(
        infless.slo_compliance_pct < 40.0,
        "{}",
        infless.slo_compliance_pct
    );
}

/// Fig. 15 shape: tightening the SLO to 2× degrades PROTEAN only
/// mildly (paper: ≤ ~5%).
#[test]
fn tight_slo_degrades_protean_gracefully() {
    let setup = setup();
    let trace = setup.wiki_trace(ModelId::ShuffleNetV2);
    let loose = run_scheme(&setup.cluster(), &ProteanBuilder::paper(), &trace);
    let mut tight_cfg = setup.cluster();
    tight_cfg.slo_multiplier = 2.0;
    let tight = run_scheme(&tight_cfg, &ProteanBuilder::paper(), &trace);
    let degradation = loose.slo_compliance_pct - tight.slo_compliance_pct;
    assert!(degradation < 8.0, "degradation {degradation}");
    assert!(
        tight.slo_compliance_pct > 90.0,
        "{}",
        tight.slo_compliance_pct
    );
}

/// Fig. 17 shape: the Oracle beats PROTEAN by at most a whisker.
#[test]
fn oracle_gap_is_small() {
    let setup = setup();
    let trace = setup.wiki_trace(ModelId::ResNet50);
    let protean = run_scheme(&setup.cluster(), &ProteanBuilder::paper(), &trace);
    let mut oracle_cfg = setup.cluster();
    oracle_cfg.reconfig_delay = protean_sim::SimDuration::ZERO;
    oracle_cfg.cold_start = protean_sim::SimDuration::ZERO;
    let oracle = run_scheme(&oracle_cfg, &ProteanBuilder::oracle(), &trace);
    let gap = oracle.slo_compliance_pct - protean.slo_compliance_pct;
    assert!(gap.abs() < 3.0, "oracle gap {gap}");
}

/// Fig. 16 shape: GPUlet's SM caps help but cache/bandwidth sharing
/// still costs it against PROTEAN's MIG isolation.
#[test]
fn protean_at_least_matches_gpulet() {
    let setup = setup();
    let config = setup.cluster();
    let trace = setup.wiki_trace(ModelId::Vgg19);
    let protean = run_scheme(&config, &ProteanBuilder::paper(), &trace);
    let gpulet = run_scheme(&config, &Baseline::Gpulet, &trace);
    assert!(
        protean.slo_compliance_pct >= gpulet.slo_compliance_pct - 1.0,
        "PROTEAN {} vs GPUlet {}",
        protean.slo_compliance_pct,
        gpulet.slo_compliance_pct
    );
}
