//! Integration tests of the Fig. 9 cost/availability trade-off across
//! the spot market, procurement and cluster crates.

use protean::ProteanBuilder;
use protean_cluster::ClusterConfig;
use protean_experiments::{run_scheme, PaperSetup};
use protean_models::ModelId;
use protean_sim::SimDuration;
use protean_spot::{ProcurementPolicy, SpotAvailability};

fn setup() -> PaperSetup {
    PaperSetup {
        duration_secs: 90.0,
        seed: 42,
    }
}

fn config_with(
    setup: &PaperSetup,
    availability: SpotAvailability,
    policy: ProcurementPolicy,
) -> ClusterConfig {
    let mut config = setup.cluster();
    config.availability = availability;
    config.procurement = policy;
    config.revocation_check = SimDuration::from_secs(20.0);
    config.vm_startup = SimDuration::from_secs(20.0);
    config.procurement_retry = SimDuration::from_secs(20.0);
    config
}

/// Under high availability, the hybrid runs entirely on spot: ~70%
/// cheaper than on-demand (the Table 3 AWS discount) at equal SLO.
#[test]
fn hybrid_saves_seventy_percent_at_high_availability() {
    let setup = setup();
    let trace = setup.wiki_trace(ModelId::ResNet50);
    let od = run_scheme(
        &config_with(
            &setup,
            SpotAvailability::High,
            ProcurementPolicy::OnDemandOnly,
        ),
        &ProteanBuilder::paper(),
        &trace,
    );
    let hybrid = run_scheme(
        &config_with(&setup, SpotAvailability::High, ProcurementPolicy::Hybrid),
        &ProteanBuilder::paper(),
        &trace,
    );
    let ratio = hybrid.cost_usd / od.cost_usd;
    assert!((ratio - 0.30).abs() < 0.02, "cost ratio {ratio}");
    assert!(hybrid.slo_compliance_pct > 99.0);
    assert_eq!(hybrid.evictions, 0);
}

/// Under low availability, Spot Only loses workers it cannot replace
/// and its SLO compliance collapses, while the hybrid falls back to
/// on-demand and keeps serving.
#[test]
fn spot_only_collapses_hybrid_survives_at_low_availability() {
    let setup = setup();
    let trace = setup.wiki_trace(ModelId::ResNet50);
    let spot_only = run_scheme(
        &config_with(&setup, SpotAvailability::Low, ProcurementPolicy::SpotOnly),
        &ProteanBuilder::paper(),
        &trace,
    );
    let hybrid = run_scheme(
        &config_with(&setup, SpotAvailability::Low, ProcurementPolicy::Hybrid),
        &ProteanBuilder::paper(),
        &trace,
    );
    assert!(
        spot_only.slo_compliance_pct < 60.0,
        "spot-only {}",
        spot_only.slo_compliance_pct
    );
    assert!(
        hybrid.slo_compliance_pct > 90.0,
        "hybrid {}",
        hybrid.slo_compliance_pct
    );
    assert!(spot_only.evictions > 0);
    // Spot Only is still the cheapest — its problem is availability.
    assert!(spot_only.cost_usd < hybrid.cost_usd);
}

/// The hybrid's cost sits between pure spot and pure on-demand under
/// moderate availability (it pays for some on-demand fallback).
#[test]
fn hybrid_cost_is_between_extremes_at_moderate_availability() {
    let setup = setup();
    let trace = setup.wiki_trace(ModelId::ResNet50);
    let od = run_scheme(
        &config_with(
            &setup,
            SpotAvailability::Moderate,
            ProcurementPolicy::OnDemandOnly,
        ),
        &ProteanBuilder::paper(),
        &trace,
    );
    let hybrid = run_scheme(
        &config_with(
            &setup,
            SpotAvailability::Moderate,
            ProcurementPolicy::Hybrid,
        ),
        &ProteanBuilder::paper(),
        &trace,
    );
    let spot_only = run_scheme(
        &config_with(
            &setup,
            SpotAvailability::Moderate,
            ProcurementPolicy::SpotOnly,
        ),
        &ProteanBuilder::paper(),
        &trace,
    );
    assert!(
        spot_only.cost_usd < hybrid.cost_usd,
        "spot {} hybrid {}",
        spot_only.cost_usd,
        hybrid.cost_usd
    );
    assert!(
        hybrid.cost_usd < od.cost_usd,
        "hybrid {} od {}",
        hybrid.cost_usd,
        od.cost_usd
    );
    assert!(hybrid.slo_compliance_pct > 95.0);
}

/// On-demand VMs are never revoked regardless of the regime.
#[test]
fn on_demand_never_evicted() {
    let setup = setup();
    let trace = setup.wiki_trace(ModelId::MobileNet);
    let od = run_scheme(
        &config_with(
            &setup,
            SpotAvailability::Low,
            ProcurementPolicy::OnDemandOnly,
        ),
        &ProteanBuilder::paper(),
        &trace,
    );
    assert_eq!(od.evictions, 0);
    assert_eq!(od.censored, 0);
}
