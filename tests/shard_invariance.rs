//! Shard-count invariance: the sharded engine is a pure wall-clock
//! optimisation, so for ANY workload, seed, dispatch policy and shard
//! count the golden digest (counts, sorted-latency percentiles, cost,
//! utilization, lifecycle counters — floats compared as exact bit
//! patterns) must equal the sequential engine's, and the invariant
//! auditor must stay clean with the same sweep cadence.

use proptest::prelude::*;
use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_cluster::fault::ScriptedMarket;
use protean_cluster::{run_simulation, run_simulation_with_oracle, ClusterConfig, SchemeBuilder};
use protean_experiments::golden::digest;
use protean_models::{catalog, ModelId};
use protean_sim::{SimDuration, SimTime};
use protean_spot::{ProcurementPolicy, SpotAvailability};
use protean_trace::{TraceConfig, TraceShape};

fn any_vision_model() -> impl Strategy<Value = ModelId> {
    prop::sample::select(catalog().vision().map(|p| p.id).collect::<Vec<_>>())
}

/// Covers both dispatch policies: Molecule/PROTEAN are load-balancing,
/// INFless/Llama and GPUlet consolidate (first-fit with a batch cap).
fn scheme_for(idx: usize) -> Box<dyn SchemeBuilder> {
    match idx % 4 {
        0 => Box::new(Baseline::MoleculeBeta),
        1 => Box::new(Baseline::InflessLlama),
        2 => Box::new(Baseline::Gpulet),
        _ => Box::new(ProteanBuilder::paper()),
    }
}

fn quick_config(seed: u64) -> ClusterConfig {
    let mut c = ClusterConfig::paper_default();
    c.workers = 8;
    c.seed = seed;
    c.warmup = SimDuration::from_secs(5.0);
    c
}

fn quick_trace(model: ModelId, rps: f64, strict_fraction: f64) -> TraceConfig {
    TraceConfig {
        shape: TraceShape::constant(rps),
        duration: SimDuration::from_secs(15.0),
        strict_model: model,
        strict_fraction,
        be_pool: catalog().opposite_pool(model),
        be_rotation_period: SimDuration::from_secs(10.0),
        batch_arrivals: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Digest equality for shards ∈ {2, 4, 8} (threaded and inline)
    /// against the sequential engine, across schemes of both dispatch
    /// policies, arbitrary seeds, rates and mixes.
    #[test]
    fn prop_digest_invariant_under_sharding(
        seed in 0u64..1000,
        model in any_vision_model(),
        rps in 200.0f64..2000.0,
        strict_fraction in 0.1f64..0.9,
        scheme_idx in 0usize..4,
        shards in prop::sample::select(vec![2usize, 4, 8]),
        threads in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let config = quick_config(seed);
        let trace = quick_trace(model, rps, strict_fraction);
        let scheme = scheme_for(scheme_idx);
        let sequential = run_simulation(&config, scheme.as_ref(), &trace);
        let mut sharded = config.clone();
        sharded.shards = shards;
        sharded.shard_threads = threads;
        let parallel = run_simulation(&sharded, scheme.as_ref(), &trace);
        prop_assert_eq!(digest(&sequential), digest(&parallel));
    }

    /// Same invariance through the scripted spot market: adversarial
    /// evictions, VM replacement, orphan re-dispatch and censoring all
    /// run on the coordinator, and the invariant auditor (which chains
    /// per-shard `DispatchIndex::verify_partition` views into its fleet
    /// sweep) must stay clean with the sequential sweep count.
    #[test]
    fn prop_digest_invariant_under_sharded_faults(
        seed in 0u64..1000,
        evict_worker in 0usize..3,
        evict_at_secs in 6.0f64..20.0,
        lead_secs in 1.0f64..30.0,
        shards in prop::sample::select(vec![2usize, 3]),
    ) {
        let mut config = quick_config(seed);
        config.workers = 3;
        config.procurement = ProcurementPolicy::Hybrid;
        config.availability = SpotAvailability::Low;
        config.revocation_check = SimDuration::from_secs(5.0);
        config.vm_startup = SimDuration::from_secs(5.0);
        config.procurement_retry = SimDuration::from_secs(5.0);
        config.audit = true;
        let trace = quick_trace(ModelId::ResNet50, 300.0, 0.5);
        let script = || {
            ScriptedMarket::new().evict(
                evict_worker,
                SimTime::from_secs(evict_at_secs),
                SimDuration::from_secs(lead_secs),
            )
        };
        let mut market = script();
        let sequential =
            run_simulation_with_oracle(&config, &ProteanBuilder::paper(), &trace, &mut market);
        let mut sharded = config.clone();
        sharded.shards = shards;
        sharded.shard_threads = 2;
        let mut market = script();
        let parallel =
            run_simulation_with_oracle(&sharded, &ProteanBuilder::paper(), &trace, &mut market);
        prop_assert_eq!(digest(&sequential), digest(&parallel));
        prop_assert!(parallel.audit.is_clean(), "{:?}", parallel.audit.violations);
        prop_assert!(parallel.audit.checks > 0);
        prop_assert_eq!(sequential.audit.checks, parallel.audit.checks);
    }

    /// Epoch coarsening is a pure elision of provably-empty phases, so
    /// the digest must be invariant not only in the shard count but in
    /// the coarsening cap AND the window-expiry coalescing knob:
    /// per-arrival (`max_epoch_arrivals = 1`), lightly coarsened and
    /// fully coarsened runs of the same cell — with expiry admission on
    /// and off — must all reproduce the sequential digest, across
    /// schemes of both dispatch policies, seeds, rates and mixes — and
    /// the extended counter triad must reconcile on every arm.
    #[test]
    fn prop_digest_invariant_under_epoch_coarsening(
        seed in 0u64..1000,
        model in any_vision_model(),
        rps in 200.0f64..2000.0,
        strict_fraction in 0.1f64..0.9,
        scheme_idx in 0usize..4,
        shards in prop::sample::select(vec![2usize, 4, 8]),
        cap in prop::sample::select(vec![1u64, 4, 64]),
        coalesce_expiries in proptest::bool::ANY,
    ) {
        let config = quick_config(seed);
        let trace = quick_trace(model, rps, strict_fraction);
        let scheme = scheme_for(scheme_idx);
        let sequential = run_simulation(&config, scheme.as_ref(), &trace);
        let mut sharded = config.clone();
        sharded.shards = shards;
        sharded.shard_threads = 2;
        sharded.max_epoch_arrivals = cap;
        sharded.coalesce_window_expiries = coalesce_expiries;
        let parallel = run_simulation(&sharded, scheme.as_ref(), &trace);
        prop_assert_eq!(digest(&sequential), digest(&parallel));
        prop_assert_eq!(parallel.stats.expiries, sequential.stats.expiries);
        prop_assert_eq!(
            parallel.stats.epochs
                + parallel.stats.coalesced_arrivals
                + parallel.stats.coalesced_expiries,
            parallel.stats.arrivals + parallel.stats.expiries
        );
        prop_assert_eq!(parallel.stats.run_cutoffs.total(), parallel.stats.epochs);
        if cap == 1 {
            // Every dispatch event is a singleton run.
            prop_assert_eq!(
                parallel.stats.epochs,
                parallel.stats.arrivals + parallel.stats.expiries
            );
            prop_assert_eq!(parallel.stats.coalesced_arrivals, 0);
            prop_assert_eq!(parallel.stats.coalesced_expiries, 0);
        }
        if !coalesce_expiries {
            prop_assert_eq!(parallel.stats.coalesced_expiries, 0);
        }
    }

    /// Coarsening under scripted spot evictions with the auditor on:
    /// the coarsened and per-arrival arms must agree with each other
    /// bit for bit AND sweep the invariant auditor the same number of
    /// times — per-arrival audit opportunities happen *inside* runs, so
    /// coalescing must not change the sweep cadence.
    #[test]
    fn prop_coarsening_preserves_audit_cadence_under_faults(
        seed in 0u64..1000,
        evict_worker in 0usize..3,
        evict_at_secs in 6.0f64..20.0,
        lead_secs in 1.0f64..30.0,
        shards in prop::sample::select(vec![2usize, 3]),
    ) {
        let mut config = quick_config(seed);
        config.workers = 3;
        config.procurement = ProcurementPolicy::Hybrid;
        config.availability = SpotAvailability::Low;
        config.revocation_check = SimDuration::from_secs(5.0);
        config.vm_startup = SimDuration::from_secs(5.0);
        config.procurement_retry = SimDuration::from_secs(5.0);
        config.audit = true;
        config.shards = shards;
        config.shard_threads = 2;
        let trace = quick_trace(ModelId::ResNet50, 300.0, 0.5);
        let script = || {
            ScriptedMarket::new().evict(
                evict_worker,
                SimTime::from_secs(evict_at_secs),
                SimDuration::from_secs(lead_secs),
            )
        };
        let mut per_arrival_cfg = config.clone();
        per_arrival_cfg.max_epoch_arrivals = 1;
        let mut market = script();
        let per_arrival =
            run_simulation_with_oracle(&per_arrival_cfg, &ProteanBuilder::paper(), &trace, &mut market);
        let mut coarse_cfg = config.clone();
        coarse_cfg.max_epoch_arrivals = 64;
        let mut market = script();
        let coarse =
            run_simulation_with_oracle(&coarse_cfg, &ProteanBuilder::paper(), &trace, &mut market);
        // Third arm: coarsened with window-expiry coalescing off (the
        // PR-8 discipline) — same digest, same sweep cadence.
        let mut no_expiry_cfg = coarse_cfg.clone();
        no_expiry_cfg.coalesce_window_expiries = false;
        let mut market = script();
        let no_expiry =
            run_simulation_with_oracle(&no_expiry_cfg, &ProteanBuilder::paper(), &trace, &mut market);
        prop_assert_eq!(digest(&per_arrival), digest(&coarse));
        prop_assert_eq!(digest(&per_arrival), digest(&no_expiry));
        prop_assert!(per_arrival.audit.is_clean(), "{:?}", per_arrival.audit.violations);
        prop_assert!(coarse.audit.is_clean(), "{:?}", coarse.audit.violations);
        prop_assert!(no_expiry.audit.is_clean(), "{:?}", no_expiry.audit.violations);
        prop_assert!(coarse.audit.checks > 0);
        prop_assert_eq!(per_arrival.audit.checks, coarse.audit.checks);
        prop_assert_eq!(per_arrival.audit.checks, no_expiry.audit.checks);
        for arm in [&coarse, &no_expiry] {
            prop_assert_eq!(
                arm.stats.epochs + arm.stats.coalesced_arrivals + arm.stats.coalesced_expiries,
                arm.stats.arrivals + arm.stats.expiries
            );
            prop_assert_eq!(arm.stats.run_cutoffs.total(), arm.stats.epochs);
        }
        prop_assert_eq!(no_expiry.stats.coalesced_expiries, 0);
    }
}
