//! Golden-seed equivalence: the engine's observable results are pinned
//! bit for bit against digests recorded under the all-jobs re-projection
//! event discipline (PR 1 era). The next-completion-only scheduler is a
//! pure performance refactor, so every scheme × seed must reproduce
//! these lines exactly — floats are compared as `to_bits()` hex, so a
//! single ULP of drift anywhere in event ordering, RNG consumption or
//! arithmetic association fails the test.
//!
//! Regenerate the table with the `golden_digest` binary after an
//! *intentional* behaviour change:
//!
//! ```text
//! cargo run --release -p protean-experiments --bin golden_digest
//! ```

use protean_experiments::golden::{golden_digests, golden_digests_streaming};

/// Captured from the pre-refactor engine (all-jobs re-projection): every
/// scheme × seeds {42, 7, 1234} on the paper's 8-worker wiki workload at
/// 20 s, plus two spot-market runs covering eviction, VM replacement and
/// censoring.
const EXPECTED: &[&str] = &[
    "seed=42 Molecule (beta) n=26496 sp50=4063fbbe76c8b439 sp99=4071eab851eb851f be99=406e914fdf3b645a cost=3fcd219652bd3c36 util=3fe146d9be4cd74a cold=0 rc=0 cens=0 ev=0",
    "seed=42 INFless/Llama n=26496 sp50=4076ccd0e5604189 sp99=4083c6ba5e353f7d be99=4079766e978d4fdf cost=3fcd219652bd3c36 util=3fc53deba8b00cfa cold=141 rc=0 cens=0 ev=0",
    "seed=42 Naive Slicing n=26496 sp50=40602f126e978d50 sp99=406669db22d0e560 be99=4057c1a9fbe76c8b cost=3fcd219652bd3c36 util=3fcd68a1917e66f5 cold=0 rc=0 cens=0 ev=0",
    "seed=42 MIG Only n=26496 sp50=4068e28f5c28f5c3 sp99=406f84083126e979 be99=4061e03126e978d5 cost=3fcd219652bd3c36 util=3fd484913e3dc705 cold=0 rc=0 cens=0 ev=0",
    "seed=42 MPS+MIG n=26496 sp50=4060a28f5c28f5c3 sp99=406744083126e979 be99=4057c1fbe76c8b44 cost=3fcd219652bd3c36 util=3fca745ab983d72c cold=0 rc=0 cens=0 ev=0",
    "seed=42 'Smart' MPS+MIG n=26496 sp50=40602f126e978d50 sp99=406669db22d0e560 be99=405840624dd2f1aa cost=3fcd219652bd3c36 util=3fcb7dc26c458aeb cold=0 rc=0 cens=0 ev=0",
    "seed=42 GPUlet n=26496 sp50=40620be76c8b4396 sp99=4068dc6a7ef9db23 be99=405baba5e353f7cf cost=3fcd219652bd3c36 util=3fcbfe8cc31c74d6 cold=0 rc=0 cens=0 ev=0",
    "seed=42 PROTEAN n=26496 sp50=406034f5c28f5c29 sp99=406669db22d0e560 be99=4058795810624dd3 cost=3fcd219652bd3c36 util=3fc898b90353bb38 cold=0 rc=8 cens=0 ev=0",
    "seed=7 Molecule (beta) n=26112 sp50=4064a7f7ced91687 sp99=407222978d4fdf3b be99=4071877ced916873 cost=3fcd219652bd3c36 util=3fe2465800c7fc02 cold=0 rc=0 cens=0 ev=0",
    "seed=7 INFless/Llama n=26112 sp50=4077205a1cac0831 sp99=4080fd353f7ced91 be99=407b914fdf3b645a cost=3fcd219652bd3c36 util=3fc5f664b6380ae2 cold=145 rc=0 cens=0 ev=0",
    "seed=7 Naive Slicing n=26112 sp50=40606483126e978d sp99=4065e224dd2f1aa0 be99=4060e1916872b021 cost=3fcd219652bd3c36 util=3fcfced57e2d8893 cold=0 rc=0 cens=0 ev=0",
    "seed=7 MIG Only n=26112 sp50=406914fdf3b645a2 sp99=406e2224dd2f1aa0 be99=406654c49ba5e354 cost=3fcd219652bd3c36 util=3fd58953ceeb662e cold=0 rc=0 cens=0 ev=0",
    "seed=7 MPS+MIG n=26112 sp50=4060d4fdf3b645a2 sp99=4065e224dd2f1aa0 be99=4061274395810625 cost=3fcd219652bd3c36 util=3fccd36dd3cf50a3 cold=0 rc=0 cens=0 ev=0",
    "seed=7 'Smart' MPS+MIG n=26112 sp50=40608ddb22d0e560 sp99=4065fff7ced91687 be99=4061274395810625 cost=3fcd219652bd3c36 util=3fcd6ef06ad55acd cold=0 rc=0 cens=0 ev=0",
    "seed=7 GPUlet n=26112 sp50=4061d38d4fdf3b64 sp99=40669028f5c28f5c be99=4062bb1a9fbe76c9 cost=3fcd219652bd3c36 util=3fcd90f08868c4bb cold=0 rc=0 cens=0 ev=0",
    "seed=7 PROTEAN n=26112 sp50=40606483126e978d sp99=4065fff7ced91687 be99=4061274395810625 cost=3fcd219652bd3c36 util=3fc9c6ac47b4abca cold=0 rc=8 cens=0 ev=0",
    "seed=1234 Molecule (beta) n=22528 sp50=40648bbe76c8b439 sp99=4075ee083126e979 be99=4071aebc6a7ef9db cost=3fcd219652bd3c36 util=3fe18a6727009fe3 cold=0 rc=0 cens=0 ev=0",
    "seed=1234 INFless/Llama n=22528 sp50=4074d30624dd2f1b sp99=4081e13b645a1cac be99=407d19ae147ae148 cost=3fcd219652bd3c36 util=3fc541a840fc498c cold=158 rc=0 cens=0 ev=0",
    "seed=1234 Naive Slicing n=22528 sp50=4060a4ed916872b0 sp99=40688bced916872b be99=405bb24dd2f1a9fc cost=3fcd219652bd3c36 util=3fcdf3b76f363d92 cold=0 rc=0 cens=0 ev=0",
    "seed=1234 MIG Only n=22528 sp50=40694a8f5c28f5c3 sp99=406fe0f5c28f5c29 be99=4064072b020c49ba cost=3fcd219652bd3c36 util=3fd4c6a5ac8ff7b5 cold=0 rc=0 cens=0 ev=0",
    "seed=1234 MPS+MIG n=22528 sp50=4060f0189374bc6a sp99=4067a0f5c28f5c29 be99=405bb24dd2f1a9fc cost=3fcd219652bd3c36 util=3fcb1d2391d57ffa cold=0 rc=0 cens=0 ev=0",
    "seed=1234 'Smart' MPS+MIG n=22528 sp50=4060d15810624dd3 sp99=407110c49ba5e354 be99=405e89374bc6a7f0 cost=3fcd219652bd3c36 util=3fcba2e5f5180817 cold=0 rc=0 cens=0 ev=0",
    "seed=1234 GPUlet n=22528 sp50=4061ab2b020c49ba sp99=406c5083126e978d be99=4060d7126e978d50 cost=3fcd219652bd3c36 util=3fcc341dff446e42 cold=0 rc=0 cens=0 ev=0",
    "seed=1234 PROTEAN n=22528 sp50=4060a2e147ae147b sp99=40665ab851eb851f be99=405e89374bc6a7f0 cost=3fcd219652bd3c36 util=3fc885ca2d5a12b8 cold=0 rc=8 cens=0 ev=0",
    "spot seed=3 PROTEAN n=70272 sp50=406f1d1eb851eb85 sp99=4086913333333333 be99=407477c28f5c28f6 cost=3fbebbc18f0a9aa5 util=3fdd1cbf0d48504d cold=37 rc=0 cens=0 ev=1",
    "spot seed=11 PROTEAN n=72704 sp50=40c806c04189374c sp99=40d355fd0e560419 be99=40d3722f8d4fdf3b cost=3fb90d87cbca26b8 util=3fc92433abdd5d4f cold=196 rc=0 cens=72704 ev=3",
];

#[test]
fn results_are_bit_identical_to_recorded_digests() {
    let actual = golden_digests();
    assert_eq!(
        actual.len(),
        EXPECTED.len(),
        "digest count changed: got {}, recorded {}",
        actual.len(),
        EXPECTED.len()
    );
    let mut mismatches = Vec::new();
    for (got, want) in actual.iter().zip(EXPECTED) {
        if got != want {
            mismatches.push(format!("  got:      {got}\n  recorded: {want}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} digests drifted from the recorded engine behaviour:\n{}",
        mismatches.len(),
        EXPECTED.len(),
        mismatches.join("\n")
    );
}

/// The streaming arrival path (`run_simulation_streaming`) must
/// reproduce the materialised engine bit for bit on every golden
/// config — all eight schemes × three seeds plus the two spot-market
/// runs. Comparing against the same recorded constants (not just
/// stream-vs-materialized in-process) pins the streaming path to the
/// PR-1-era behaviour directly.
#[test]
fn streaming_arrivals_reproduce_the_recorded_digests() {
    let actual = golden_digests_streaming();
    assert_eq!(actual.len(), EXPECTED.len());
    let mut mismatches = Vec::new();
    for (got, want) in actual.iter().zip(EXPECTED) {
        if got != want {
            mismatches.push(format!("  streamed: {got}\n  recorded: {want}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} streamed digests diverged from the materialised engine:\n{}",
        mismatches.len(),
        EXPECTED.len(),
        mismatches.join("\n")
    );
}
