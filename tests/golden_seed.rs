//! Golden-seed equivalence: the engine's observable results are pinned
//! bit for bit against recorded digests (re-captured for the per-worker
//! jitter-stream relabel). Sequential, streaming and sharded runs must
//! all reproduce these lines exactly — floats are compared as `to_bits()` hex, so a
//! single ULP of drift anywhere in event ordering, RNG consumption or
//! arithmetic association fails the test.
//!
//! Regenerate the table with the `golden_digest` binary after an
//! *intentional* behaviour change:
//!
//! ```text
//! cargo run --release -p protean-experiments --bin golden_digest
//! ```

use protean_experiments::golden::{
    golden_digests, golden_digests_sharded, golden_digests_sharded_coalesced_off,
    golden_digests_sharded_per_arrival, golden_digests_streaming,
};

/// Captured from the sequential engine (per-worker jitter streams):
/// every scheme × seeds {42, 7, 1234} on the paper's 8-worker wiki
/// workload at 20 s, plus two spot-market runs covering eviction, VM
/// replacement and censoring.
const EXPECTED: &[&str] = &[
    "seed=42 Molecule (beta) n=26496 sp50=40649624dd2f1aa0 sp99=407160e147ae147b be99=406f3126e978d4fe cost=3fcd219652bd3c36 util=3fe144623d0bfa09 cold=0 rc=0 cens=0 ev=0",
    "seed=42 INFless/Llama n=26496 sp50=4073b5999999999a sp99=4081a0b020c49ba6 be99=40792f89374bc6a8 cost=3fcd219652bd3c36 util=3fc4fd8eec418733 cold=135 rc=0 cens=0 ev=0",
    "seed=42 Naive Slicing n=26496 sp50=4060e62d0e560419 sp99=4067f46a7ef9db23 be99=40576a3d70a3d70a cost=3fcd219652bd3c36 util=3fcd78232a5dd2b3 cold=0 rc=0 cens=0 ev=0",
    "seed=42 MIG Only n=26496 sp50=406938f5c28f5c29 sp99=4070522d0e560419 be99=406312a7ef9db22d cost=3fcd219652bd3c36 util=3fd48cb5ca8f2399 cold=0 rc=0 cens=0 ev=0",
    "seed=42 MPS+MIG n=26496 sp50=4060e6f9db22d0e5 sp99=4065e0dd2f1a9fbe be99=405aa54fdf3b645a cost=3fcd219652bd3c36 util=3fca862404e6d703 cold=0 rc=0 cens=0 ev=0",
    "seed=42 'Smart' MPS+MIG n=26496 sp50=4060b9604189374c sp99=406ff883126e978d be99=4057e72b020c49ba cost=3fcd219652bd3c36 util=3fcb7d793245f85c cold=0 rc=0 cens=0 ev=0",
    "seed=42 GPUlet n=26496 sp50=4061fb7ced916873 sp99=40694c28f5c28f5c be99=405ead810624dd2f cost=3fcd219652bd3c36 util=3fcbb91f3b2eaa39 cold=0 rc=0 cens=0 ev=0",
    "seed=42 PROTEAN n=26496 sp50=4060bd5810624dd3 sp99=4068783126e978d5 be99=4058bf4bc6a7ef9e cost=3fcd219652bd3c36 util=3fc8a43738ac8769 cold=0 rc=8 cens=0 ev=0",
    "seed=7 Molecule (beta) n=26112 sp50=40651d999999999a sp99=40735e24dd2f1aa0 be99=407079a1cac08312 cost=3fcd219652bd3c36 util=3fe23430994ff2b2 cold=0 rc=0 cens=0 ev=0",
    "seed=7 INFless/Llama n=26112 sp50=40776e83126e978d sp99=4082b124dd2f1aa0 be99=407fa50624dd2f1b cost=3fcd219652bd3c36 util=3fc6013c559bbde5 cold=160 rc=0 cens=0 ev=0",
    "seed=7 Naive Slicing n=26112 sp50=406085604189374c sp99=406a594fdf3b645a be99=405e54ed916872b0 cost=3fcd219652bd3c36 util=3fcf8acfb9afde65 cold=0 rc=0 cens=0 ev=0",
    "seed=7 MIG Only n=26112 sp50=4068a3b645a1cac1 sp99=407006395810624e be99=40665322d0e56042 cost=3fcd219652bd3c36 util=3fd562d970bdd21a cold=0 rc=0 cens=0 ev=0",
    "seed=7 MPS+MIG n=26112 sp50=406085604189374c sp99=4067721cac083127 be99=405f990624dd2f1b cost=3fcd219652bd3c36 util=3fcc97a9eaca8eaf cold=0 rc=0 cens=0 ev=0",
    "seed=7 'Smart' MPS+MIG n=26112 sp50=40602b020c49ba5e sp99=40712fdb22d0e560 be99=405f990624dd2f1b cost=3fcd219652bd3c36 util=3fcd1a6d636d2b76 cold=0 rc=0 cens=0 ev=0",
    "seed=7 GPUlet n=26112 sp50=406131f3b645a1cb sp99=406865db22d0e560 be99=4064c989374bc6a8 cost=3fcd219652bd3c36 util=3fcd238f310ae4e4 cold=0 rc=0 cens=0 ev=0",
    "seed=7 PROTEAN n=26112 sp50=40605589374bc6a8 sp99=4069d95810624dd3 be99=405f6883126e978d cost=3fcd219652bd3c36 util=3fc955e41975b570 cold=0 rc=8 cens=0 ev=0",
    "seed=1234 Molecule (beta) n=22528 sp50=4064d374bc6a7efa sp99=4072628f5c28f5c3 be99=4071346a7ef9db23 cost=3fcd219652bd3c36 util=3fe18a54096c904d cold=0 rc=0 cens=0 ev=0",
    "seed=1234 INFless/Llama n=22528 sp50=4074bad0e5604189 sp99=4082aa2d0e560419 be99=407c5b851eb851ec cost=3fcd219652bd3c36 util=3fc5027b5a695809 cold=158 rc=0 cens=0 ev=0",
    "seed=1234 Naive Slicing n=22528 sp50=4060bd4fdf3b645a sp99=406a4c6a7ef9db23 be99=405a5c395810624e cost=3fcd219652bd3c36 util=3fcdd8cf398e9707 cold=0 rc=0 cens=0 ev=0",
    "seed=1234 MIG Only n=22528 sp50=40690ea7ef9db22d sp99=40709e083126e979 be99=4063ff126e978d50 cost=3fcd219652bd3c36 util=3fd4c5040095a71c cold=0 rc=0 cens=0 ev=0",
    "seed=1234 MPS+MIG n=22528 sp50=4060b9a1cac08312 sp99=40684ee978d4fdf4 be99=405cd3a5e353f7cf cost=3fcd219652bd3c36 util=3fcb1e567a975103 cold=0 rc=0 cens=0 ev=0",
    "seed=1234 'Smart' MPS+MIG n=22528 sp50=406075b22d0e5604 sp99=406eb26e978d4fdf be99=405cd3a5e353f7cf cost=3fcd219652bd3c36 util=3fcbbaf189324f8f cold=0 rc=0 cens=0 ev=0",
    "seed=1234 GPUlet n=22528 sp50=40618ac083126e98 sp99=406c99db22d0e560 be99=4060820c49ba5e35 cost=3fcd219652bd3c36 util=3fcc0d07248c7c4e cold=0 rc=0 cens=0 ev=0",
    "seed=1234 PROTEAN n=22528 sp50=4060d03126e978d5 sp99=406b871a9fbe76c9 be99=4060b9374bc6a7f0 cost=3fcd219652bd3c36 util=3fc8607dd816ea45 cold=0 rc=8 cens=0 ev=0",
    "spot seed=3 PROTEAN n=70272 sp50=4070a90e56041893 sp99=40836b83126e978d be99=4074bab439581062 cost=3fbebbc18f0a9aa5 util=3fdcb8cdd661d711 cold=36 rc=0 cens=0 ev=1",
    "spot seed=11 PROTEAN n=72704 sp50=40c806c04189374c sp99=40d355fd0e560419 be99=40d3722f8d4fdf3b cost=3fb90d87cbca26b8 util=3fc9b81318c440a9 cold=290 rc=2 cens=72704 ev=3",
];

#[test]
fn results_are_bit_identical_to_recorded_digests() {
    let actual = golden_digests();
    assert_eq!(
        actual.len(),
        EXPECTED.len(),
        "digest count changed: got {}, recorded {}",
        actual.len(),
        EXPECTED.len()
    );
    let mut mismatches = Vec::new();
    for (got, want) in actual.iter().zip(EXPECTED) {
        if got != want {
            mismatches.push(format!("  got:      {got}\n  recorded: {want}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} digests drifted from the recorded engine behaviour:\n{}",
        mismatches.len(),
        EXPECTED.len(),
        mismatches.join("\n")
    );
}

/// The streaming arrival path (`run_simulation_streaming`) must
/// reproduce the materialised engine bit for bit on every golden
/// config — all eight schemes × three seeds plus the two spot-market
/// runs. Comparing against the same recorded constants (not just
/// stream-vs-materialized in-process) pins the streaming path to the
/// PR-1-era behaviour directly.
#[test]
fn streaming_arrivals_reproduce_the_recorded_digests() {
    let actual = golden_digests_streaming();
    assert_eq!(actual.len(), EXPECTED.len());
    let mut mismatches = Vec::new();
    for (got, want) in actual.iter().zip(EXPECTED) {
        if got != want {
            mismatches.push(format!("  streamed: {got}\n  recorded: {want}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} streamed digests diverged from the materialised engine:\n{}",
        mismatches.len(),
        EXPECTED.len(),
        mismatches.join("\n")
    );
}

/// The sharded engine (`shards = 4`, two shard threads) must reproduce
/// the sequential engine bit for bit on every golden config — all eight
/// schemes x three seeds plus the two spot-market runs (evictions,
/// replacement, censoring). Comparing against the same recorded
/// constants pins the parallel path to the recorded behaviour directly,
/// not merely to whatever the sequential engine currently does.
#[test]
fn sharded_engine_reproduces_the_recorded_digests() {
    let actual = golden_digests_sharded();
    assert_eq!(actual.len(), EXPECTED.len());
    let mut mismatches = Vec::new();
    for (got, want) in actual.iter().zip(EXPECTED) {
        if got != want {
            mismatches.push(format!("  sharded:  {got}\n  recorded: {want}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} sharded digests diverged from the sequential engine:\n{}",
        mismatches.len(),
        EXPECTED.len(),
        mismatches.join("\n")
    );
}

/// The coarsening differential arm: the sharded engine with epoch
/// coarsening forced off (`max_epoch_arrivals = 1`, one epoch per
/// arrival) must also reproduce the recorded digests on every golden
/// config. Together with `sharded_engine_reproduces_the_recorded_digests`
/// (which runs coarsened, the default) this pins both sides of the
/// run-peeling contract: eliding a provably-empty phase is exact.
#[test]
fn per_arrival_epochs_reproduce_the_recorded_digests() {
    let actual = golden_digests_sharded_per_arrival();
    assert_eq!(actual.len(), EXPECTED.len());
    let mut mismatches = Vec::new();
    for (got, want) in actual.iter().zip(EXPECTED) {
        if got != want {
            mismatches.push(format!("  per-arrival: {got}\n  recorded:    {want}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} per-arrival digests diverged from the recorded behaviour:\n{}",
        mismatches.len(),
        EXPECTED.len(),
        mismatches.join("\n")
    );
}

/// The window-expiry coalescing differential arm: the sharded engine
/// with `coalesce_window_expiries = false` (every batch-window expiry a
/// singleton epoch, the PR-8 discipline) must also reproduce the
/// recorded digests on every golden config. Together with
/// `sharded_engine_reproduces_the_recorded_digests` (knob on, the
/// default) this pins both sides of the expiry-admission rule: folding
/// a window expiry into a run elides only provably-empty phases.
#[test]
fn expiry_coalescing_off_reproduces_the_recorded_digests() {
    let actual = golden_digests_sharded_coalesced_off();
    assert_eq!(actual.len(), EXPECTED.len());
    let mut mismatches = Vec::new();
    for (got, want) in actual.iter().zip(EXPECTED) {
        if got != want {
            mismatches.push(format!(
                "  no-expiry-coalescing: {got}\n  recorded:             {want}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} knob-off digests diverged from the recorded behaviour:\n{}",
        mismatches.len(),
        EXPECTED.len(),
        mismatches.join("\n")
    );
}
