//! Cross-crate property-based tests: invariants that must hold for any
//! workload mix, seed or rate the generators can produce.

use proptest::prelude::*;
use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_cluster::{run_simulation, ClusterConfig, SchemeBuilder};
use protean_metrics::record::Class;
use protean_models::{catalog, ModelId};
use protean_sim::{RngFactory, SimDuration, SimTime};
use protean_trace::{TraceConfig, TraceShape};

fn any_vision_model() -> impl Strategy<Value = ModelId> {
    prop::sample::select(catalog().vision().map(|p| p.id).collect::<Vec<_>>())
}

fn scheme_for(idx: usize) -> Box<dyn SchemeBuilder> {
    match idx % 4 {
        0 => Box::new(Baseline::MoleculeBeta),
        1 => Box::new(Baseline::InflessLlama),
        2 => Box::new(Baseline::NaiveSlicing),
        _ => Box::new(ProteanBuilder::paper()),
    }
}

fn quick_config(seed: u64) -> ClusterConfig {
    let mut c = ClusterConfig::paper_default();
    c.workers = 2;
    c.seed = seed;
    c.warmup = SimDuration::from_secs(5.0);
    c
}

fn quick_trace(model: ModelId, rps: f64, strict_fraction: f64) -> TraceConfig {
    TraceConfig {
        shape: TraceShape::constant(rps),
        duration: SimDuration::from_secs(15.0),
        strict_model: model,
        strict_fraction,
        be_pool: catalog().opposite_pool(model),
        be_rotation_period: SimDuration::from_secs(10.0),
        batch_arrivals: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation: completed-or-censored equals post-warmup arrivals
    /// for any scheme, model, rate, mix and seed.
    #[test]
    fn prop_no_request_lost(
        seed in 0u64..1000,
        model in any_vision_model(),
        rps in 200.0f64..2000.0,
        strict_fraction in 0.1f64..0.9,
        scheme_idx in 0usize..4,
    ) {
        let config = quick_config(seed);
        let trace = quick_trace(model, rps, strict_fraction);
        let scheme = scheme_for(scheme_idx);
        let result = run_simulation(&config, scheme.as_ref(), &trace);
        let factory = RngFactory::new(config.seed);
        let expected = trace
            .generate(&factory)
            .requests()
            .iter()
            .filter(|r| r.arrival >= SimTime::ZERO + config.warmup)
            .count();
        prop_assert_eq!(result.metrics.count(Class::All), expected);
    }

    /// Latency is never negative and never exceeds the simulation
    /// horizon plus drain grace; breakdown components are non-negative.
    #[test]
    fn prop_latency_bounds(
        seed in 0u64..1000,
        model in any_vision_model(),
        scheme_idx in 0usize..4,
    ) {
        let config = quick_config(seed);
        let trace = quick_trace(model, 800.0, 0.5);
        let scheme = scheme_for(scheme_idx);
        let result = run_simulation(&config, scheme.as_ref(), &trace);
        let horizon = trace.duration + config.drain_grace;
        for rec in result.metrics.records() {
            let lat = rec.latency();
            prop_assert!(lat <= horizon);
            prop_assert!(rec.breakdown.min_exec_ms >= 0.0);
            prop_assert!(rec.breakdown.deficiency_ms >= 0.0);
            prop_assert!(rec.breakdown.interference_ms >= 0.0);
            prop_assert!(rec.breakdown.queueing_ms >= 0.0);
            prop_assert!(rec.breakdown.cold_start_ms >= 0.0);
        }
    }

    /// Cost accounting: on-demand-only runs cost exactly
    /// workers × hours × worker-rate, independent of the workload.
    #[test]
    fn prop_on_demand_cost_is_rectangular(
        seed in 0u64..1000,
        model in any_vision_model(),
    ) {
        let config = quick_config(seed);
        let trace = quick_trace(model, 500.0, 0.5);
        let result = run_simulation(&config, &ProteanBuilder::paper(), &trace);
        let hours = (trace.duration + config.drain_grace).as_secs_f64() / 3600.0;
        let expected = config.workers as f64
            * hours
            * protean_spot::PricingTable::paper_table3()
                .worker_price(protean_spot::Provider::Aws, protean_spot::VmTier::OnDemand);
        prop_assert!((result.cost.total_usd - expected).abs() < 1e-6,
            "cost {} expected {}", result.cost.total_usd, expected);
    }

    /// Strict-only traces never record best-effort requests, and
    /// vice versa.
    #[test]
    fn prop_class_purity(seed in 0u64..500, model in any_vision_model()) {
        let config = quick_config(seed);
        let mut all_strict = quick_trace(model, 500.0, 1.0);
        all_strict.be_pool.clear();
        let result = run_simulation(&config, &ProteanBuilder::paper(), &all_strict);
        prop_assert_eq!(result.metrics.count(Class::BestEffort), 0);
        let all_be = quick_trace(model, 500.0, 0.0);
        let result = run_simulation(&config, &ProteanBuilder::paper(), &all_be);
        prop_assert_eq!(result.metrics.count(Class::Strict), 0);
    }
}
