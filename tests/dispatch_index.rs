//! Differential tests for the O(log W) dispatcher index.
//!
//! The index must be observationally identical to the linear scans it
//! replaced. Two layers prove it: a property test drives a raw
//! [`DispatchIndex`] through randomized eviction/reconfig/boot/load
//! interleavings and cross-checks every query against a linear-scan
//! reference model, and full-simulation tests run the engine twice —
//! `reference_dispatch` on and off — over spot-faulted fleets and
//! require bit-identical digests (with the auditor's index-coherence
//! sweep riding along).

use proptest::prelude::*;
use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_cluster::{
    run_simulation_with_oracle, ClusterConfig, DispatchIndex, SchemeBuilder, ScriptedMarket,
};
use protean_experiments::golden;
use protean_models::ModelId;
use protean_sim::{SimDuration, SimTime};
use protean_spot::{ProcurementPolicy, SpotAvailability};
use protean_trace::{TraceConfig, TraceShape};

/// The linear-scan reference: per-slot dispatch state mirroring what
/// the engine's retained `reference_target` scans read.
#[derive(Debug, Clone, Copy)]
struct Slot {
    routable: bool,
    accepting: bool,
    outstanding: u64,
}

/// `min_by_key((outstanding, idx))` over eligible slots — the original
/// load-balance scan.
fn linear_least_loaded(slots: &[Slot], need_accepting: bool) -> Option<usize> {
    slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.routable && (!need_accepting || s.accepting))
        .min_by_key(|(idx, s)| (s.outstanding, *idx))
        .map(|(idx, _)| idx)
}

/// `find(routable && accepting && outstanding < cap)` — the original
/// consolidate scan.
fn linear_first_fit(slots: &[Slot], cap: u64) -> Option<usize> {
    slots
        .iter()
        .position(|s| s.routable && s.accepting && s.outstanding < cap)
}

/// First-fit caps representative of `cap_batches × batch_size` products.
const CAPS: [u64; 4] = [1, 8, 80, 320];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleavings of the engine's mutation points — dispatch
    /// load, completions, eviction notice, final eviction, VM install,
    /// reconfig drain/complete — must leave every index query equal to
    /// the linear reference, including the first-fit root descent.
    #[test]
    fn prop_index_matches_linear_reference(
        ops in prop::collection::vec((0usize..8, 0u32..6, 1u64..40), 1..120),
    ) {
        let n = 8;
        let mut slots = vec![
            Slot { routable: true, accepting: true, outstanding: 0 };
            n
        ];
        let mut index = DispatchIndex::new(n);
        for (idx, s) in slots.iter().enumerate() {
            index.refresh(idx, s.routable, s.accepting, s.outstanding);
        }
        for (w, kind, amount) in ops {
            let s = &mut slots[w];
            match kind {
                // Dispatch: the engine only adds load to routable slots.
                0 => {
                    if s.routable {
                        s.outstanding += amount;
                    }
                }
                // Batch completion.
                1 => s.outstanding = s.outstanding.saturating_sub(amount),
                // Eviction notice: no longer routable, load still held.
                2 => s.routable = false,
                // Final eviction: the drain zeroes outstanding.
                3 => {
                    s.routable = false;
                    s.outstanding = 0;
                }
                // Replacement VM installs with a fresh accepting GPU.
                4 => {
                    s.routable = true;
                    s.accepting = true;
                    s.outstanding = 0;
                }
                // Reconfiguration drain/complete toggles accepting.
                _ => s.accepting = !s.accepting,
            }
            let s = slots[w];
            index.refresh(w, s.routable, s.accepting, s.outstanding);

            prop_assert_eq!(
                index.least_loaded_accepting(),
                linear_least_loaded(&slots, true)
            );
            prop_assert_eq!(
                index.least_loaded_routable(),
                linear_least_loaded(&slots, false)
            );
            prop_assert_eq!(index.any_routable(), slots.iter().any(|s| s.routable));
            for cap in CAPS {
                let mut visits = 0;
                prop_assert_eq!(
                    index.first_fit(cap, &mut visits),
                    linear_first_fit(&slots, cap),
                    "first-fit diverged at cap {}", cap
                );
            }
        }
    }
}

/// A spot-faulted cluster config for the full-run differential.
fn faulted_config(workers: usize, seed: u64, reference: bool) -> ClusterConfig {
    let mut config = ClusterConfig::small_test();
    config.workers = workers;
    config.seed = seed;
    config.procurement = ProcurementPolicy::Hybrid;
    config.availability = SpotAvailability::Low; // unused: scripted oracle
    config.revocation_check = SimDuration::from_secs(5.0);
    config.vm_startup = SimDuration::from_secs(5.0);
    config.procurement_retry = SimDuration::from_secs(5.0);
    config.audit = true;
    config.reference_dispatch = reference;
    config
}

fn faulted_trace() -> TraceConfig {
    TraceConfig {
        shape: TraceShape::constant(250.0),
        duration: SimDuration::from_secs(40.0),
        strict_model: ModelId::ResNet50,
        strict_fraction: 0.5,
        be_pool: vec![ModelId::MobileNet],
        be_rotation_period: SimDuration::from_secs(20.0),
        batch_arrivals: false,
    }
}

/// Runs the same scripted-eviction simulation with the linear reference
/// and with the index, returning both digests (and asserting the
/// audited runs stayed clean — the index-coherence invariant is part of
/// the sweep).
fn differential_run(
    scheme: &dyn SchemeBuilder,
    workers: usize,
    seed: u64,
    evictions: &[(usize, f64, f64)],
) -> (String, String) {
    let run = |reference: bool| {
        let config = faulted_config(workers, seed, reference);
        let mut market = ScriptedMarket::new();
        for &(worker, at, lead) in evictions {
            market = market.evict(worker, SimTime::from_secs(at), SimDuration::from_secs(lead));
        }
        let result = run_simulation_with_oracle(&config, &scheme, &faulted_trace(), &mut market);
        assert!(result.audit.is_clean(), "{:?}", result.audit.violations);
        golden::digest(&result)
    };
    (run(true), run(false))
}

/// Load-balance dispatch (PROTEAN): indexed and linear runs must be
/// bit-identical through evictions, replacements and reconfigurations.
#[test]
fn load_balance_digests_match_linear_reference_under_faults() {
    let evictions = [(0, 6.0, 4.0), (2, 15.0, 8.0), (1, 24.0, 3.0)];
    for seed in [7, 42, 1234] {
        let (linear, indexed) = differential_run(&ProteanBuilder::paper(), 4, seed, &evictions);
        assert_eq!(linear, indexed, "seed {seed} diverged");
    }
}

/// Consolidate dispatch (INFless/Llama): the first-fit descent must
/// reproduce the linear front scan exactly, including across evictions
/// that re-open saturated low-index slots.
#[test]
fn consolidate_digests_match_linear_reference_under_faults() {
    let evictions = [(0, 5.0, 5.0), (1, 18.0, 6.0)];
    for seed in [7, 42, 1234] {
        let (linear, indexed) = differential_run(&Baseline::InflessLlama, 4, seed, &evictions);
        assert_eq!(linear, indexed, "seed {seed} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized fleets: arbitrary eviction schedules over 2–6 workers
    /// under both dispatch policies must digest identically with the
    /// index on and off.
    #[test]
    fn prop_full_run_digests_match_under_random_faults(
        workers in 2usize..6,
        seed in 1u64..500,
        consolidate in prop::bool::ANY,
        schedule in prop::collection::vec((0usize..6, 2.0f64..30.0, 1.0f64..10.0), 0..4),
    ) {
        let evictions: Vec<(usize, f64, f64)> = schedule
            .into_iter()
            .map(|(w, at, lead)| (w % workers, at, lead))
            .collect();
        let scheme: Box<dyn SchemeBuilder> = if consolidate {
            Box::new(Baseline::InflessLlama)
        } else {
            Box::new(ProteanBuilder::paper())
        };
        let (linear, indexed) =
            differential_run(&*scheme, workers, seed, &evictions);
        prop_assert_eq!(linear, indexed);
    }
}

/// The `Consolidate` policy's headroom test is strict: a worker whose
/// outstanding equals `cap_batches × batch_size` is full and must be
/// passed over, while one request below the cap still accepts — at the
/// boundary, index and linear scan agree slot by slot.
#[test]
fn consolidate_descent_honors_cap_exactly_at_the_boundary() {
    let cap = 80; // e.g. cap_batches 10 × batch size 8
    let mut index = DispatchIndex::new(3);
    let mut slots = vec![
        Slot {
            routable: true,
            accepting: true,
            outstanding: cap,
        };
        3
    ];
    slots[1].outstanding = cap - 1;
    for (idx, s) in slots.iter().enumerate() {
        index.refresh(idx, s.routable, s.accepting, s.outstanding);
    }
    let mut visits = 0;
    // Worker 0 sits exactly at the cap: full. Worker 1 is one below.
    assert_eq!(index.first_fit(cap, &mut visits), Some(1));
    assert_eq!(linear_first_fit(&slots, cap), Some(1));
    // One more request saturates worker 1 too.
    slots[1].outstanding = cap;
    index.refresh(1, true, true, cap);
    let mut visits = 0;
    assert_eq!(index.first_fit(cap, &mut visits), None);
    assert_eq!(linear_first_fit(&slots, cap), None);
    // A single completion on worker 0 re-opens it: the next descent
    // lands back on the lowest index.
    slots[0].outstanding = cap - 1;
    index.refresh(0, true, true, cap - 1);
    let mut visits = 0;
    assert_eq!(index.first_fit(cap, &mut visits), Some(0));
    assert_eq!(linear_first_fit(&slots, cap), Some(0));
}
