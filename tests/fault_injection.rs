//! Deterministic fault injection for the spot-market lifecycle.
//!
//! Each test scripts an exact adversarial interleaving through
//! [`ScriptedMarket`] — no seed scanning — and runs with the invariant
//! auditor enabled, so a lifecycle bug shows up either as a direct
//! assertion failure or as an audit violation. The randomized property
//! at the bottom composes arbitrary eviction/denial schedules and the
//! final test pins the auditor's zero-observability guarantee: a golden
//! spot run produces a bit-identical digest with auditing on.

use proptest::prelude::*;
use protean::ProteanBuilder;
use protean_cluster::{
    run_simulation, run_simulation_with_oracle, ClusterConfig, JournalEvent, ScriptedMarket,
};
use protean_experiments::{golden, PaperSetup};
use protean_metrics::record::Class;
use protean_models::ModelId;
use protean_sim::{RngFactory, SimDuration, SimTime};
use protean_spot::{ProcurementPolicy, SpotAvailability};
use protean_trace::{TraceConfig, TraceShape};

/// A 3-worker hybrid-procurement cluster with fast spot timings and the
/// invariant auditor on.
fn spot_config() -> ClusterConfig {
    let mut config = ClusterConfig::small_test();
    config.workers = 3;
    config.procurement = ProcurementPolicy::Hybrid;
    config.availability = SpotAvailability::Low; // unused: the oracle is scripted
    config.revocation_check = SimDuration::from_secs(5.0);
    config.vm_startup = SimDuration::from_secs(5.0);
    config.procurement_retry = SimDuration::from_secs(5.0);
    config.audit = true;
    config
}

fn trace(rps: f64, secs: f64) -> TraceConfig {
    TraceConfig {
        shape: TraceShape::constant(rps),
        duration: SimDuration::from_secs(secs),
        strict_model: ModelId::ResNet50,
        strict_fraction: 0.5,
        be_pool: vec![ModelId::MobileNet],
        be_rotation_period: SimDuration::from_secs(20.0),
        batch_arrivals: false,
    }
}

/// Post-warmup arrivals of `t` under `config.seed` — what
/// `metrics.count(Class::All)` must equal (censored requests are
/// recorded at the cutoff, not dropped).
fn expected_requests(config: &ClusterConfig, t: &TraceConfig) -> usize {
    let factory = RngFactory::new(config.seed);
    t.generate(&factory)
        .requests()
        .iter()
        .filter(|r| r.arrival >= SimTime::ZERO + config.warmup)
        .count()
}

/// Regression: an eviction lands while cold-start boots are in flight,
/// and the replacement VM installs before those boots complete. The
/// `BootDone` events were armed against the *old* VM; applying them to
/// the fresh one used to create containers out of thin air (or trip the
/// pool's booting-count underflow). Epoch tagging discards them.
#[test]
fn boots_in_flight_across_vm_replacement_are_discarded_as_stale() {
    let mut config = spot_config();
    config.workers = 1;
    config.prewarm_containers = 0; // every batch cold-starts
    config.cold_start = SimDuration::from_secs(8.0);
    config.vm_startup = SimDuration::from_secs(2.0);
    // Notice at the t=5 s check, VM reclaimed at t=8 s; the replacement
    // is ready at t=7 s and installs at t=8 s. Boots armed in (0, 5]
    // finish in (8, 13] — all on the dead VM.
    let mut market =
        ScriptedMarket::new().evict(0, SimTime::from_secs(5.0), SimDuration::from_secs(3.0));
    let t = trace(200.0, 30.0);
    let result = run_simulation_with_oracle(&config, &ProteanBuilder::paper(), &t, &mut market);
    assert_eq!(result.cost.evictions, 1);
    assert!(
        result.stats.stale_boot_events > 0,
        "no boot was in flight across the replacement; the scenario is vacuous"
    );
    assert!(result.audit.is_clean(), "{:?}", result.audit.violations);
    assert_eq!(
        result.metrics.count(Class::All),
        expected_requests(&config, &t)
    );
}

/// The replacement VM is granted *before* the old one drains: it must
/// stand by as `pending_vm` and install exactly when the old VM is
/// reclaimed, not the moment it is ready.
#[test]
fn replacement_ready_before_drain_waits_for_eviction_final() {
    let mut config = spot_config();
    config.journal_capacity = 500_000;
    // Notice at t=10 s with a 20 s lead: reclaim at t=30 s. The
    // replacement is ready at t=15 s, mid-drain.
    let mut market =
        ScriptedMarket::new().evict(0, SimTime::from_secs(10.0), SimDuration::from_secs(20.0));
    let t = trace(200.0, 60.0);
    let result = run_simulation_with_oracle(&config, &ProteanBuilder::paper(), &t, &mut market);
    assert_eq!(result.cost.evictions, 1);
    assert!(result.audit.is_clean(), "{:?}", result.audit.violations);
    let notice = result
        .journal
        .filter(|e| matches!(e, JournalEvent::EvictionNotice { worker: 0, .. }))
        .next()
        .expect("no eviction notice journaled");
    assert_eq!(notice.0, SimTime::from_secs(10.0));
    let installs: Vec<SimTime> = result
        .journal
        .filter(|e| matches!(e, JournalEvent::VmInstalled { worker: 0 }))
        .map(|(at, _)| *at)
        .collect();
    assert_eq!(
        installs,
        vec![SimTime::from_secs(30.0)],
        "pending VM must install at the reclaim instant, not when granted"
    );
}

/// Evictions landing mid-reconfiguration: PROTEAN keeps reshaping MIG
/// geometries while two workers drain and are replaced. Every
/// conservation law must hold through the overlap.
#[test]
fn reconfig_storm_under_eviction_keeps_invariants() {
    let setup = PaperSetup {
        duration_secs: 80.0,
        seed: 42,
    };
    let mut config = setup.cluster();
    config.procurement = ProcurementPolicy::Hybrid;
    config.revocation_check = SimDuration::from_secs(5.0);
    config.vm_startup = SimDuration::from_secs(5.0);
    config.procurement_retry = SimDuration::from_secs(5.0);
    config.audit = true;
    // The Fig. 7 rotation through the oversized DPN 92 forces geometry
    // changes; the two evictions straddle the rotation boundaries.
    let t = TraceConfig {
        be_pool: vec![
            ModelId::MobileNet,
            ModelId::Dpn92,
            ModelId::ResNet50,
            ModelId::Dpn92,
        ],
        be_rotation_period: SimDuration::from_secs(20.0),
        ..setup.wiki_trace(ModelId::ShuffleNetV2)
    };
    let mut market = ScriptedMarket::new()
        .evict(1, SimTime::from_secs(22.0), SimDuration::from_secs(10.0))
        .evict(4, SimTime::from_secs(38.0), SimDuration::from_secs(10.0));
    let result = run_simulation_with_oracle(&config, &ProteanBuilder::paper(), &t, &mut market);
    assert_eq!(result.cost.evictions, 2);
    assert!(result.reconfigs > 0, "the storm never reconfigured");
    assert!(result.audit.is_clean(), "{:?}", result.audit.violations);
    assert_eq!(
        result.metrics.count(Class::All),
        expected_requests(&config, &t)
    );
}

/// Spot-only procurement under a denial burst: the evicted slot cannot
/// be replaced and stays down, yet no request is lost from the
/// accounting and no invariant breaks on the surviving worker.
#[test]
fn procurement_denial_burst_leaves_the_slot_down_without_losing_requests() {
    let mut config = spot_config();
    config.workers = 2;
    config.procurement = ProcurementPolicy::SpotOnly;
    config.journal_capacity = 500_000;
    // Initial provisioning consumes the two grants (one roll per worker
    // at t=0); every roll after that — the replacement attempt at the
    // notice and all retries — is denied.
    let mut market = ScriptedMarket::new()
        .grant_next(2)
        .evict(0, SimTime::from_secs(5.0), SimDuration::from_secs(5.0))
        .deny_rest();
    let t = trace(200.0, 30.0);
    let result = run_simulation_with_oracle(&config, &ProteanBuilder::paper(), &t, &mut market);
    assert_eq!(result.cost.evictions, 1);
    assert!(
        market.acquisition_rolls() >= 3,
        "expected the initial rolls plus at least one denied replacement, saw {}",
        market.acquisition_rolls()
    );
    assert_eq!(
        result
            .journal
            .filter(|e| matches!(e, JournalEvent::VmInstalled { worker: 0 }))
            .count(),
        0,
        "a denied slot must never receive a replacement VM"
    );
    assert!(result.audit.is_clean(), "{:?}", result.audit.violations);
    assert_eq!(
        result.metrics.count(Class::All),
        expected_requests(&config, &t)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any eviction/denial schedule the generator can produce must run
    /// to completion with a clean audit and exact request accounting.
    #[test]
    fn prop_random_fault_schedules_keep_invariants(
        schedule in prop::collection::vec(
            (0usize..3, 0.0f64..25.0, 1.0f64..15.0),
            0..4,
        ),
        grants in prop::collection::vec(prop::bool::ANY, 0..6),
        deny_rest in prop::bool::ANY,
    ) {
        let config = spot_config();
        let mut market = ScriptedMarket::new();
        for &(worker, at, lead) in &schedule {
            market = market.evict(
                worker,
                SimTime::from_secs(at),
                SimDuration::from_secs(lead),
            );
        }
        for g in grants {
            market = if g { market.grant_next(1) } else { market.deny_next(1) };
        }
        if deny_rest {
            market = market.deny_rest();
        }
        let t = trace(200.0, 40.0);
        let result =
            run_simulation_with_oracle(&config, &ProteanBuilder::paper(), &t, &mut market);
        prop_assert!(result.audit.is_clean(), "{:?}", result.audit.violations);
        prop_assert_eq!(
            result.metrics.count(Class::All),
            expected_requests(&config, &t)
        );
    }
}

/// The auditor must be a pure observer: a golden-style spot run (real
/// `SpotMarket`, evictions, replacement, re-dispatch) digests
/// bit-identically with auditing on, and the audited run is clean.
#[test]
fn audited_golden_spot_run_is_bit_identical_and_clean() {
    let setup = PaperSetup {
        duration_secs: 30.0,
        seed: 3,
    };
    let mut config = setup.cluster();
    config.workers = 3;
    config.procurement = ProcurementPolicy::Hybrid;
    config.availability = SpotAvailability::Low;
    config.revocation_check = SimDuration::from_secs(5.0);
    config.vm_startup = SimDuration::from_secs(5.0);
    let t = setup.wiki_trace(ModelId::ResNet50);
    let plain = run_simulation(&config, &ProteanBuilder::paper(), &t);
    config.audit = true;
    let audited = run_simulation(&config, &ProteanBuilder::paper(), &t);
    assert!(
        plain.cost.evictions > 0,
        "seed 3 must exercise the spot path"
    );
    assert_eq!(
        golden::digest(&plain),
        golden::digest(&audited),
        "enabling the auditor changed an observable result"
    );
    assert!(audited.audit.is_clean(), "{:?}", audited.audit.violations);
    assert!(audited.audit.checks > 0);
    assert!(!plain.audit.enabled);
}

/// Tie regression for the scenario catalog's storm scripts: two
/// evictions at the identical `SimTime` on *different* workers, with
/// leads chosen so both eviction finals land exactly on a
/// boot-completion / revocation-check tick (cold_start = vm_startup =
/// revocation_check = 5 s, notices at the t=10 s checks, leads 5 s ⇒
/// finals at t=15 s, colliding with boots armed at t=10 s). The run
/// must resolve in one documented deterministic order: identical
/// digests across shards ∈ {1, 4}, clean audit, both evictions taken.
#[test]
fn simultaneous_evictions_resolve_identically_across_shards() {
    let make = |shards: usize| {
        let mut config = spot_config();
        config.workers = 4;
        config.prewarm_containers = 0; // boots in flight at the collision tick
        config.cold_start = SimDuration::from_secs(5.0);
        config.shards = shards;
        config.shard_threads = 2;
        let mut market = ScriptedMarket::new()
            .evict(1, SimTime::from_secs(10.0), SimDuration::from_secs(5.0))
            .evict(2, SimTime::from_secs(10.0), SimDuration::from_secs(5.0));
        let t = trace(300.0, 40.0);
        let result = run_simulation_with_oracle(&config, &ProteanBuilder::paper(), &t, &mut market);
        assert_eq!(
            market.pending_evictions(),
            0,
            "a scripted eviction never fired"
        );
        result
    };
    let sequential = make(1);
    let sharded = make(4);
    assert_eq!(sequential.cost.evictions, 2);
    assert_eq!(
        golden::digest(&sequential),
        golden::digest(&sharded),
        "simultaneous evictions resolved differently under sharding"
    );
    assert!(
        sequential.audit.is_clean(),
        "{:?}",
        sequential.audit.violations
    );
    assert!(sharded.audit.is_clean(), "{:?}", sharded.audit.violations);
}

/// `audit_every_n` sampling must thin the full-state sweeps without
/// changing anything observable: a sampled run digests bit-identically
/// to the every-event run, stays clean, and performs roughly 1/n of the
/// sweeps. Fleet-scale benchmarks rely on this to keep the auditor on.
#[test]
fn sampled_audit_is_digest_neutral_and_thins_sweeps() {
    let make = |every_n: u64| {
        let mut config = spot_config();
        config.audit_every_n = every_n;
        let mut market = ScriptedMarket::new()
            .evict(0, SimTime::from_secs(5.0), SimDuration::from_secs(5.0))
            .evict(2, SimTime::from_secs(12.0), SimDuration::from_secs(3.0));
        let t = trace(200.0, 30.0);
        run_simulation_with_oracle(&config, &ProteanBuilder::paper(), &t, &mut market)
    };
    let full = make(1);
    let sampled = make(7);
    assert_eq!(
        golden::digest(&full),
        golden::digest(&sampled),
        "audit sampling changed an observable result"
    );
    assert!(sampled.audit.is_clean(), "{:?}", sampled.audit.violations);
    assert!(full.audit.checks > 0 && sampled.audit.checks > 0);
    assert!(
        sampled.audit.checks <= full.audit.checks / 6,
        "sampling 1-in-7 left too many sweeps: {} vs {}",
        sampled.audit.checks,
        full.audit.checks
    );
}
