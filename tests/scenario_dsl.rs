//! Scenario DSL contract tests.
//!
//! Three pins, per the catalog's design:
//!
//! 1. **Round-trip**: `parse(spec.to_toml()) == spec` for any valid
//!    spec the generator can produce, and for every file in the
//!    shipped `scenarios/` catalog.
//! 2. **Differential**: a hand-built `ClusterConfig` + `TraceConfig` +
//!    `ScriptedMarket` — written the way an engine test would write
//!    them, with no DSL involvement — produces the exact same
//!    [`golden::digest`] as its DSL-declared twin, on two golden
//!    configs (scripted evictions, and a jittered storm).
//! 3. **Catalog**: every shipped scenario runs green in smoke mode
//!    (both engine arms, digest equality, clean audits, expectations).

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use protean::ProteanBuilder;
use protean_cluster::{run_trace_with_oracle, ClusterConfig, ScriptedMarket};
use protean_experiments::golden;
use protean_experiments::scenario::{
    self, BurstSpec, EvictionSpec, ExpectSpec, FleetSpec, MarketSpec, ScenarioError, ScenarioSpec,
    StormSpec, TraceKind, TraceSpec,
};
use protean_models::{catalog, ModelId};
use protean_sim::{RngFactory, SimDuration, SimTime};
use protean_spot::{ProcurementPolicy, Provider, SpotAvailability};
use protean_trace::{TraceConfig, TraceShape};

/// The shipped catalog, relative to this crate's manifest.
fn catalog_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

// ---------------------------------------------------------------------------
// 1. Round-trip
// ---------------------------------------------------------------------------

const SCHEMES: [&str; 5] = ["protean", "oracle", "molecule", "naive", "smart"];
const MODELS: [ModelId; 4] = [
    ModelId::ResNet50,
    ModelId::MobileNet,
    ModelId::Dpn92,
    ModelId::GoogleNet,
];
const KINDS: [TraceKind; 4] = [
    TraceKind::Constant,
    TraceKind::Wiki,
    TraceKind::Twitter,
    TraceKind::Pulse,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any valid spec serializes to TOML that reparses to an identical
    /// spec — field for field, including array-of-table ordering.
    #[test]
    fn prop_to_toml_reparses_identically(
        (workers, seed, scheme_idx, proc_idx, avail_idx)
            in (1usize..8, 0u64..1000, 0usize..5, 0usize..3, 0usize..3),
        (slo_mult, rps, duration_secs, strict_fraction, provider_idx)
            in (1.0f64..5.0, 50.0f64..500.0, 10.0f64..90.0, 0.0f64..=1.0, 0usize..3),
        (kind_idx, prewarm, be_rotation_secs, batch_arrivals, deny_rest)
            in (0usize..4, 0usize..6, 5.0f64..40.0, prop::bool::ANY, prop::bool::ANY),
        (pulse_low, pulse_period, pulse_duty, script_bits, script_len)
            in (0.0f64..50.0, 1.0f64..30.0, 0.05f64..=1.0, 0u64..64, 0usize..=6),
        (timing_a, timing_b, timing_c, timing_d, model_idx)
            in (0.5f64..20.0, 0.5f64..20.0, 0.5f64..20.0, 0.5f64..20.0, 0usize..4),
        bursts_raw in prop::collection::vec((0.0f64..60.0, 1.0f64..30.0, 10.0f64..200.0), 0..3),
        evictions_raw in prop::collection::vec((0.0f64..1.0, 0.0f64..80.0, 0.0f64..20.0), 0..3),
        storms_raw in prop::collection::vec(
            (prop::collection::vec(0.0f64..1.0, 1..4), 0.0f64..80.0, 0.0f64..15.0, 0.0f64..10.0, 0u64..100),
            0..3,
        ),
        (exp_flags, exp_ev, exp_rc, exp_cens, be_pool_raw)
            in (0usize..8, 0u64..6, 0u64..6, 0u64..2000, prop::collection::vec(0usize..4, 0..4)),
    ) {
        let kind = KINDS[kind_idx];
        // Pulse keys only exist in the file when kind = "pulse"; the
        // canonical form keeps them at their defaults otherwise.
        let (pulse_low_rps, pulse_period_secs, pulse_duty) = if kind == TraceKind::Pulse {
            (pulse_low, pulse_period, pulse_duty)
        } else {
            (0.0, 10.0, 0.5)
        };
        let worker_at = |frac: f64| ((frac * workers as f64) as usize).min(workers - 1);
        let spec = ScenarioSpec {
            name: format!("case_{seed}"),
            description: format!("generated round-trip case, seed {seed}"),
            fleet: FleetSpec {
                workers,
                seed,
                scheme: SCHEMES[scheme_idx].to_string(),
                procurement: [
                    ProcurementPolicy::OnDemandOnly,
                    ProcurementPolicy::SpotOnly,
                    ProcurementPolicy::Hybrid,
                ][proc_idx],
                availability: [
                    SpotAvailability::High,
                    SpotAvailability::Moderate,
                    SpotAvailability::Low,
                ][avail_idx],
                provider: [Provider::Aws, Provider::Azure, Provider::Gcp][provider_idx],
                slo_mult,
                revocation_check_secs: timing_a,
                vm_startup_secs: timing_b,
                procurement_retry_secs: timing_c,
                prewarm,
                cold_start_secs: timing_d,
            },
            trace: TraceSpec {
                csv: None,
                model: MODELS[model_idx],
                kind,
                rps,
                duration_secs,
                strict_fraction,
                be_pool: be_pool_raw.iter().map(|&i| MODELS[i]).collect(),
                be_rotation_secs,
                batch_arrivals,
                pulse_low_rps,
                pulse_period_secs,
                pulse_duty,
                bursts: bursts_raw
                    .iter()
                    .map(|&(start_secs, duration_secs, add_rps)| BurstSpec {
                        start_secs,
                        duration_secs,
                        add_rps,
                    })
                    .collect(),
            },
            market: MarketSpec {
                script: (0..script_len)
                    .map(|i| if script_bits >> i & 1 == 1 { 'g' } else { 'd' })
                    .collect(),
                deny_rest,
                evictions: evictions_raw
                    .iter()
                    .map(|&(frac, at_secs, lead_secs)| EvictionSpec {
                        worker: worker_at(frac),
                        at_secs,
                        lead_secs,
                    })
                    .collect(),
                storms: storms_raw
                    .iter()
                    .map(|(fracs, at_secs, lead_secs, lead_jitter_secs, jitter_seed)| StormSpec {
                        workers: fracs.iter().map(|&f| worker_at(f)).collect(),
                        at_secs: *at_secs,
                        lead_secs: *lead_secs,
                        lead_jitter_secs: *lead_jitter_secs,
                        jitter_seed: *jitter_seed,
                    })
                    .collect(),
            },
            expect: ExpectSpec {
                min_evictions: (exp_flags & 1 != 0).then_some(exp_ev),
                min_reconfigs: (exp_flags & 2 != 0).then_some(exp_rc),
                max_censored: (exp_flags & 4 != 0).then_some(exp_cens),
            },
        };
        let toml = spec.to_toml();
        let reparsed = match scenario::parse(&toml) {
            Ok(s) => s,
            Err(e) => return Err(format!("canonical TOML failed to reparse: {e}\n---\n{toml}")),
        };
        prop_assert_eq!(&reparsed, &spec, "round-trip mismatch\n---\n{}", toml);
    }
}

/// Every shipped catalog file also satisfies the round-trip contract:
/// parse → to_toml → parse is identity (comments are the only loss).
#[test]
fn catalog_files_round_trip_through_canonical_toml() {
    let files = scenario::catalog_files(&catalog_dir()).expect("scenarios/ must be readable");
    assert!(
        files.len() >= 8,
        "catalog must hold at least 8 scenarios, found {}",
        files.len()
    );
    for file in files {
        let spec = scenario::load_file(&file)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", file.display()));
        let reparsed = scenario::parse(&spec.to_toml())
            .unwrap_or_else(|e| panic!("{} canonical form failed to reparse: {e}", file.display()));
        assert_eq!(reparsed, spec, "{} round-trip mismatch", file.display());
    }
}

// ---------------------------------------------------------------------------
// 2. Differential: hand-built vs DSL twin
// ---------------------------------------------------------------------------

/// Golden config A: hybrid fleet, grant/deny script, two scripted
/// evictions at distinct times. The hand-built side is written exactly
/// the way the engine's own fault-injection tests write it.
#[test]
fn hand_built_market_matches_dsl_twin_on_scripted_evictions() {
    let mut config = ClusterConfig::paper_default();
    config.workers = 3;
    config.seed = 42;
    config.slo_multiplier = 3.0;
    config.procurement = ProcurementPolicy::Hybrid;
    config.availability = SpotAvailability::Low;
    config.provider = Provider::Aws;
    config.revocation_check = SimDuration::from_secs(5.0);
    config.vm_startup = SimDuration::from_secs(5.0);
    config.procurement_retry = SimDuration::from_secs(5.0);
    config.prewarm_containers = 4;
    config.cold_start = SimDuration::from_secs(8.0);
    config.audit = true;
    config.shards = 1;
    config.shard_threads = 0;

    let trace_config = TraceConfig {
        shape: TraceShape::constant(240.0),
        duration: SimDuration::from_secs(40.0),
        strict_model: ModelId::ResNet50,
        strict_fraction: 0.5,
        be_pool: vec![ModelId::MobileNet],
        be_rotation_period: SimDuration::from_secs(20.0),
        batch_arrivals: false,
    };
    let trace = trace_config.generate(&RngFactory::new(config.seed));

    let mut market = ScriptedMarket::new()
        .evict(1, SimTime::from_secs(15.0), SimDuration::from_secs(5.0))
        .evict(2, SimTime::from_secs(20.0), SimDuration::from_secs(8.0))
        .grant_next(1)
        .deny_next(1);

    let scheme = ProteanBuilder::paper();
    let result = run_trace_with_oracle(&config, &scheme, trace, &mut market);
    let hand_digest = golden::digest(&result);

    let twin = "\
name = \"golden_a_twin\"
description = \"DSL twin of the hand-built scripted-eviction config\"

[fleet]
workers = 3
seed = 42
scheme = \"protean\"
procurement = \"hybrid\"
availability = \"low\"

[trace]
model = \"resnet50\"
kind = \"constant\"
rps = 240
duration_secs = 40
be_pool = [\"mobilenet\"]

[market]
script = \"gd\"

[[market.eviction]]
worker = 1
at_secs = 15
lead_secs = 5

[[market.eviction]]
worker = 2
at_secs = 20
lead_secs = 8
";
    let spec = scenario::parse(twin).expect("twin must parse");
    let outcome = scenario::run(&spec, Path::new("."), false).expect("twin must run green");
    assert_eq!(
        outcome.digest, hand_digest,
        "DSL twin diverged from the hand-built run"
    );
    assert!(
        result.cost.evictions >= 1,
        "the scripted evictions must land"
    );
}

/// Golden config B: an eviction storm whose notice leads come from the
/// documented jitter stream. The hand-built side draws the same leads
/// from `RngFactory::new(seed).indexed_stream("scenario.storm.lead", i)`
/// in listed worker order — the contract DESIGN.md documents.
#[test]
fn hand_built_market_matches_dsl_twin_on_jittered_storm() {
    let mut config = ClusterConfig::paper_default();
    config.workers = 4;
    config.seed = 7;
    config.slo_multiplier = 3.0;
    config.procurement = ProcurementPolicy::Hybrid;
    config.availability = SpotAvailability::Low;
    config.provider = Provider::Aws;
    config.revocation_check = SimDuration::from_secs(5.0);
    config.vm_startup = SimDuration::from_secs(5.0);
    config.procurement_retry = SimDuration::from_secs(5.0);
    config.prewarm_containers = 2;
    config.cold_start = SimDuration::from_secs(8.0);
    config.audit = true;
    config.shards = 1;
    config.shard_threads = 0;

    let mut be_pool = catalog().opposite_pool(ModelId::ResNet50);
    if be_pool.is_empty() {
        be_pool.push(ModelId::ResNet50);
    }
    let trace_config = TraceConfig {
        shape: TraceShape::wiki(260.0),
        duration: SimDuration::from_secs(45.0),
        strict_model: ModelId::ResNet50,
        strict_fraction: 0.5,
        be_pool,
        be_rotation_period: SimDuration::from_secs(20.0),
        batch_arrivals: false,
    };
    let trace = trace_config.generate(&RngFactory::new(config.seed));

    let mut jitter = RngFactory::new(11).indexed_stream("scenario.storm.lead", 0);
    let lead0 = 6.0 + jitter.uniform() * 4.0;
    let lead2 = 6.0 + jitter.uniform() * 4.0;
    let mut market = ScriptedMarket::new()
        .evict(0, SimTime::from_secs(20.0), SimDuration::from_secs(lead0))
        .evict(2, SimTime::from_secs(20.0), SimDuration::from_secs(lead2));

    let scheme = ProteanBuilder::paper();
    let result = run_trace_with_oracle(&config, &scheme, trace, &mut market);
    let hand_digest = golden::digest(&result);

    let twin = "\
name = \"golden_b_twin\"
description = \"DSL twin of the hand-built jittered-storm config\"

[fleet]
workers = 4
seed = 7
scheme = \"protean\"
procurement = \"hybrid\"
availability = \"low\"
prewarm = 2

[trace]
model = \"resnet50\"
kind = \"wiki\"
rps = 260
duration_secs = 45

[[market.storm]]
workers = [0, 2]
at_secs = 20
lead_secs = 6
lead_jitter_secs = 4
jitter_seed = 11
";
    let spec = scenario::parse(twin).expect("twin must parse");
    let outcome = scenario::run(&spec, Path::new("."), false).expect("twin must run green");
    assert_eq!(
        outcome.digest, hand_digest,
        "DSL storm twin diverged from the hand-built run"
    );
    assert!(result.cost.evictions >= 1, "the storm must land");
}

// ---------------------------------------------------------------------------
// 3. Catalog + file-level errors
// ---------------------------------------------------------------------------

/// Every shipped scenario runs green in smoke mode: both engine arms,
/// sequential/sharded digest equality, clean audits, met expectations.
#[test]
fn shipped_catalog_runs_green_in_smoke_mode() {
    let dir = catalog_dir();
    let files = scenario::catalog_files(&dir).expect("scenarios/ must be readable");
    assert!(files.len() >= 8, "catalog shrank below 8 scenarios");
    let mut names = std::collections::BTreeSet::new();
    for file in files {
        let spec = scenario::load_file(&file)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", file.display()));
        assert!(
            names.insert(spec.name.clone()),
            "duplicate scenario name '{}'",
            spec.name
        );
        scenario::run(&spec, &dir, true)
            .unwrap_or_else(|e| panic!("{} failed in smoke mode: {e}", file.display()));
    }
}

/// `load_file` errors carry the file path and the 1-based line of the
/// offending key, so a typo in a catalog file points at itself.
#[test]
fn load_file_errors_carry_path_and_line() {
    let dir = std::env::temp_dir().join("protean_scenario_dsl_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("typo.toml");
    std::fs::write(&path, "name = \"typo\"\n\n[fleet]\nworkerz = 3\n").unwrap();

    let err = scenario::load_file(&path).expect_err("unknown key must be rejected");
    match &err {
        ScenarioError::Parse { line, msg } => {
            assert_eq!(*line, 4, "error must point at the offending line: {err}");
            assert!(
                msg.contains("typo.toml"),
                "error must carry the path: {err}"
            );
            assert!(
                msg.contains("workerz"),
                "error must name the bad key: {err}"
            );
        }
        other => panic!("expected a Parse error, got: {other}"),
    }

    let missing = dir.join("does_not_exist.toml");
    let err = scenario::load_file(&missing).expect_err("missing file must be an error");
    assert!(
        err.to_string().contains("does_not_exist.toml"),
        "I/O error must carry the path: {err}"
    );
    std::fs::remove_file(&path).ok();
}
