//! Statistical integration tests of the trace generators: the
//! published shape parameters must be realised by the synthetic traces
//! across seeds.

use protean_models::{catalog, ModelId};
use protean_sim::{RngFactory, SimDuration};
use protean_trace::{TraceConfig, TraceShape};

fn config(shape: TraceShape, secs: f64, strict_fraction: f64, batched: bool) -> TraceConfig {
    TraceConfig {
        shape,
        duration: SimDuration::from_secs(secs),
        strict_model: ModelId::ResNet50,
        strict_fraction,
        be_pool: vec![ModelId::MobileNet, ModelId::ShuffleNetV2, ModelId::ResNet18],
        be_rotation_period: SimDuration::from_secs(20.0),
        batch_arrivals: batched,
    }
}

#[test]
fn wiki_mean_rate_is_stable_across_seeds() {
    for seed in [1, 7, 99, 1234] {
        let t = config(TraceShape::wiki(5000.0), 60.0, 0.5, true).generate(&RngFactory::new(seed));
        let stats = t.stats();
        assert!(
            (stats.mean_rps - 5000.0).abs() < 300.0,
            "seed {seed}: mean {}",
            stats.mean_rps
        );
        // Published flatness: peak:mean ≈ 1.04 at the trace level. At
        // 1 s buckets a *batched* arrival process is much noisier (a
        // bucket holds ~39 Poisson batch epochs of 128 requests, so the
        // max of 60 buckets sits ~40% above the mean); the bound here
        // checks the underlying profile stays flat, not the Poisson
        // granularity.
        assert!(
            stats.peak_to_mean() < 1.6,
            "seed {seed}: ratio {}",
            stats.peak_to_mean()
        );
    }
}

#[test]
fn twitter_burstiness_is_stable_across_seeds() {
    for seed in [1, 7, 99, 1234] {
        let t =
            config(TraceShape::twitter(5000.0), 120.0, 0.5, true).generate(&RngFactory::new(seed));
        let stats = t.stats();
        assert!(
            (1.25..=2.1).contains(&stats.peak_to_mean()),
            "seed {seed}: ratio {}",
            stats.peak_to_mean()
        );
        // Scaled so the peak is ~5000 rps -> mean lands near 3000-3600.
        assert!(
            (2500.0..=4200.0).contains(&stats.mean_rps),
            "seed {seed}: mean {}",
            stats.mean_rps
        );
    }
}

#[test]
fn batched_arrivals_come_in_whole_batches() {
    let batch = catalog().profile(ModelId::ResNet50).batch_size as usize;
    let t = config(TraceShape::constant(2000.0), 20.0, 0.5, true).generate(&RngFactory::new(3));
    assert_eq!(t.requests().len() % batch, 0, "partial batch generated");
    // Each batch's members share arrival, model and class.
    for chunk in t.requests().chunks(batch) {
        let first = chunk[0];
        for r in chunk {
            assert_eq!(r.arrival, first.arrival);
            assert_eq!(r.model, first.model);
            assert_eq!(r.strict, first.strict);
        }
    }
}

#[test]
fn strictness_ratio_holds_for_skewed_mixes() {
    for (frac, seed) in [(0.25, 11), (0.75, 12), (0.5, 13)] {
        let t =
            config(TraceShape::constant(3000.0), 60.0, frac, true).generate(&RngFactory::new(seed));
        let stats = t.stats();
        let measured = stats.strict as f64 / stats.total as f64;
        assert!(
            (measured - frac).abs() < 0.04,
            "frac {frac}: measured {measured}"
        );
    }
}

#[test]
fn request_level_and_batched_rates_agree() {
    let rps = 1000.0;
    let batched = config(TraceShape::constant(rps), 60.0, 0.5, true).generate(&RngFactory::new(5));
    let single = config(TraceShape::constant(rps), 60.0, 0.5, false).generate(&RngFactory::new(5));
    let (b, s) = (batched.stats().mean_rps, single.stats().mean_rps);
    assert!((b - rps).abs() < 150.0, "batched mean {b}");
    assert!((s - rps).abs() < 100.0, "single mean {s}");
}

#[test]
fn be_rotation_only_draws_from_the_pool() {
    let t = config(TraceShape::constant(2000.0), 60.0, 0.5, true).generate(&RngFactory::new(9));
    let pool = [ModelId::MobileNet, ModelId::ShuffleNetV2, ModelId::ResNet18];
    for r in t.requests() {
        if r.strict {
            assert_eq!(r.model, ModelId::ResNet50);
        } else {
            assert!(pool.contains(&r.model), "BE model {:?}", r.model);
        }
    }
}

#[test]
fn language_batches_are_size_four() {
    let t = TraceConfig {
        strict_model: ModelId::Gpt2,
        be_pool: vec![ModelId::Bert],
        ..config(TraceShape::wiki(128.0), 30.0, 0.5, true)
    }
    .generate(&RngFactory::new(21));
    assert_eq!(t.requests().len() % 4, 0);
    let stats = t.stats();
    assert!(
        (stats.mean_rps - 128.0).abs() < 30.0,
        "mean {}",
        stats.mean_rps
    );
}
