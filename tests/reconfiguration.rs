//! Integration tests of the §4.4 reconfiguration machinery across the
//! core scheduler and cluster engine.

use protean::ProteanBuilder;
use protean_cluster::run_simulation;
use protean_experiments::PaperSetup;
use protean_models::ModelId;
use protean_sim::SimDuration;
use protean_trace::TraceConfig;

/// The Fig. 7 scenario: BE rotation through the oversized DPN 92.
fn rotation_trace(setup: &PaperSetup) -> TraceConfig {
    TraceConfig {
        be_pool: vec![
            ModelId::MobileNet,
            ModelId::Dpn92,
            ModelId::ResNet50,
            ModelId::Dpn92,
        ],
        be_rotation_period: SimDuration::from_secs(20.0),
        ..setup.wiki_trace(ModelId::ShuffleNetV2)
    }
}

#[test]
fn rotation_to_dpn92_triggers_geometry_change_to_4g_3g() {
    let setup = PaperSetup {
        duration_secs: 80.0,
        seed: 42,
    };
    let result = run_simulation(
        &setup.cluster(),
        &ProteanBuilder::paper(),
        &rotation_trace(&setup),
    );
    assert!(result.reconfigs > 0, "no reconfigurations happened");
    assert!(
        result
            .geometry_timeline
            .iter()
            .any(|gc| gc.geometry == "(4g, 3g)"),
        "expected a change to (4g, 3g): {:?}",
        result.geometry_timeline
    );
    // Wait counter: the first change comes at least
    // wait_limit x monitor_interval after t=0.
    let first = result.geometry_timeline.first().unwrap();
    assert!(
        first.at.as_secs_f64() >= 3.0 * 2.0,
        "change at {:?} ignored the wait counter",
        first.at
    );
}

#[test]
fn at_most_thirty_percent_of_gpus_reconfigure_simultaneously() {
    let setup = PaperSetup {
        duration_secs: 80.0,
        seed: 42,
    };
    let config = setup.cluster();
    let result = run_simulation(&config, &ProteanBuilder::paper(), &rotation_trace(&setup));
    let cap = ((config.max_reconfig_fraction * config.workers as f64).ceil() as usize).max(1);
    // Each completed change occupied its GPU for at least the 2 s
    // reconfiguration delay ending at `at`. Count the maximum overlap
    // of those (half-open) windows.
    let windows: Vec<(f64, f64)> = result
        .geometry_timeline
        .iter()
        .map(|gc| {
            let end = gc.at.as_secs_f64();
            (end - config.reconfig_delay.as_secs_f64(), end)
        })
        .collect();
    for &(start, _) in &windows {
        let overlap = windows
            .iter()
            .filter(|&&(s, e)| s <= start && start < e)
            .count();
        assert!(
            overlap <= cap,
            "{overlap} concurrent reconfigurations exceed the cap of {cap}"
        );
    }
}

#[test]
fn static_variant_never_reconfigures() {
    use protean::{ProteanBuilder as PB, ProteanConfig};
    let setup = PaperSetup {
        duration_secs: 60.0,
        seed: 42,
    };
    let mut config = ProteanConfig::paper();
    config.name = "static";
    config.dynamic_reconfig = false;
    let builder = PB::with_config(config, 2.0);
    let result = run_simulation(&setup.cluster(), &builder, &rotation_trace(&setup));
    assert_eq!(result.reconfigs, 0);
    assert!(result.geometry_timeline.is_empty());
}

#[test]
fn reconfiguration_downtime_does_not_lose_requests() {
    use protean_metrics::record::Class;
    use protean_sim::{RngFactory, SimTime};
    let setup = PaperSetup {
        duration_secs: 60.0,
        seed: 7,
    };
    let config = setup.cluster();
    let trace = rotation_trace(&setup);
    let result = run_simulation(&config, &ProteanBuilder::paper(), &trace);
    let factory = RngFactory::new(config.seed);
    let expected = trace
        .generate(&factory)
        .requests()
        .iter()
        .filter(|r| r.arrival >= SimTime::ZERO + config.warmup)
        .count();
    assert_eq!(result.metrics.count(Class::All), expected);
    assert!(result.reconfigs > 0);
}
