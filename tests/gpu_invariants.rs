//! Property tests driving the GPU substrate through randomized
//! admit/finish/reconfigure schedules, checking the invariants every
//! scheme relies on.

use proptest::prelude::*;
use protean_gpu::{AdmitError, Geometry, Gpu, GpuId, JobId, JobSpec, SharingMode, SliceProfile};
use protean_sim::{SimDuration, SimTime};

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    prop::sample::select(Geometry::enumerate_all())
}

fn spec(id: u64, solo_ms: f64, fbr: f64, mem: f64) -> JobSpec {
    JobSpec {
        id: JobId(id),
        solo: SimDuration::from_millis(solo_ms),
        fbr,
        mem_gb: mem,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Memory is conserved on every slice under any admit/finish
    /// interleaving: used + available == capacity, and admission never
    /// over-commits.
    #[test]
    fn prop_slice_memory_conservation(
        geometry in arb_geometry(),
        jobs in proptest::collection::vec((1.0f64..200.0, 0.05f64..0.9, 0.5f64..8.0), 1..24),
    ) {
        let mut gpu = Gpu::new(GpuId(0), geometry, SharingMode::Mps, SimTime::ZERO);
        let mut resident: Vec<(usize, JobId)> = Vec::new();
        let mut clock = SimTime::ZERO;
        for (i, (solo, fbr, mem)) in jobs.into_iter().enumerate() {
            clock += SimDuration::from_millis(1.0);
            let slice_idx = i % gpu.slices().len();
            let s = spec(i as u64, solo, fbr, mem);
            match gpu.slice_mut(slice_idx).admit(clock, s) {
                Ok(_) => resident.push((slice_idx, s.id)),
                Err(AdmitError::OutOfMemory { available_gb, requested_gb }) => {
                    prop_assert!(requested_gb > available_gb);
                }
                Err(e) => prop_assert!(false, "unexpected admit error {e:?}"),
            }
            for idx in 0..gpu.slices().len() {
                let sl = gpu.slice(idx);
                let cap = sl.profile().mem_gb();
                prop_assert!(sl.mem_used_gb() <= cap + 1e-9);
                prop_assert!((sl.mem_used_gb() + sl.mem_available_gb() - cap).abs() < 1e-6);
            }
        }
        // Drain everything via projected completions.
        for (slice_idx, job) in resident {
            let at = gpu
                .slice(slice_idx)
                .project_completions(clock)
                .into_iter()
                .find(|c| c.job == job)
                .expect("job resident")
                .at;
            clock = clock.max(at);
            // Re-project at the (possibly later) clock before finishing.
            let at = gpu
                .slice(slice_idx)
                .project_completions(clock)
                .into_iter()
                .find(|c| c.job == job)
                .expect("job resident")
                .at
                .max(clock);
            gpu.slice_mut(slice_idx).finish(at, job).expect("drain");
            clock = at;
        }
        prop_assert!(gpu.is_idle());
    }

    /// Utilization stays within [0, 1] for compute and memory across
    /// arbitrary occupancy histories.
    #[test]
    fn prop_utilization_bounded(
        geometry in arb_geometry(),
        solos in proptest::collection::vec(10.0f64..500.0, 1..10),
    ) {
        let mut gpu = Gpu::new(GpuId(0), geometry, SharingMode::Mps, SimTime::ZERO);
        let mut clock = SimTime::ZERO;
        for (i, solo) in solos.into_iter().enumerate() {
            let idx = i % gpu.slices().len();
            let s = spec(i as u64, solo, 0.2, 1.0);
            if gpu.slice_mut(idx).admit(clock, s).is_ok() {
                let at = gpu
                    .slice(idx)
                    .project_completions(clock)
                    .into_iter()
                    .find(|c| c.job == s.id)
                    .expect("resident")
                    .at;
                gpu.slice_mut(idx).finish(at, s.id).expect("solo job finishes");
                clock = at;
            }
            let at_check = clock + SimDuration::from_millis(1.0);
            let cu = gpu.compute_utilization(at_check);
            let mu = gpu.memory_utilization(at_check);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&cu), "compute {cu}");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&mu), "memory {mu}");
        }
    }

    /// The reconfiguration lifecycle is well-formed from any valid
    /// geometry to any other: request → drain (idle here) → begin →
    /// complete, and the new slices match the target.
    #[test]
    fn prop_reconfigure_any_to_any(
        from in arb_geometry(),
        to in arb_geometry(),
    ) {
        let mut gpu = Gpu::new(GpuId(0), from.clone(), SharingMode::Mps, SimTime::ZERO);
        let changed = gpu.request_reconfigure(to.clone()).expect("request valid");
        prop_assert_eq!(changed, from != to);
        if changed {
            let until = gpu.try_begin_reconfigure(SimTime::from_secs(1.0)).expect("idle");
            prop_assert_eq!(until, SimTime::from_secs(3.0));
            gpu.complete_reconfigure(until).expect("complete after delay");
        }
        prop_assert_eq!(gpu.geometry(), &to);
        prop_assert_eq!(gpu.slices().len(), to.len());
        prop_assert!(gpu.accepting());
    }

    /// Time-shared slices never report interference: a solo job's
    /// completion equals admission + solo, whatever its FBR.
    #[test]
    fn prop_time_shared_is_interference_free(
        solo in 1.0f64..500.0,
        fbr in 0.0f64..2.0,
    ) {
        let mut s = protean_gpu::Slice::new(SliceProfile::G3, SharingMode::TimeShared, SimTime::ZERO);
        let next = s.admit(SimTime::ZERO, spec(1, solo, fbr, 2.0)).expect("fits");
        prop_assert_eq!(next.job, JobId(1));
        prop_assert_eq!(next.at, SimTime::ZERO + SimDuration::from_millis(solo));
        prop_assert_eq!(s.current_slowdown(), 1.0);
    }

    /// The earliest-completion invariant the single-event engine relies
    /// on: under any admit/finish interleaving, `next_completion` equals
    /// the minimum of `project_completions` with ties resolved to the
    /// earliest-admitted resident, and it tracks membership changes.
    #[test]
    fn prop_next_completion_is_earliest_projection(
        geometry in arb_geometry(),
        jobs in proptest::collection::vec((1.0f64..200.0, 0.05f64..0.9, 0.1f64..2.0), 1..24),
        finish_every in 2usize..5,
    ) {
        let mut gpu = Gpu::new(GpuId(0), geometry, SharingMode::Mps, SimTime::ZERO);
        let mut clock = SimTime::ZERO;
        let check = |gpu: &Gpu, clock: SimTime| {
            for idx in 0..gpu.slices().len() {
                let sl = gpu.slice(idx);
                let full = sl.project_completions(clock);
                let mut expected: Option<protean_gpu::Completion> = None;
                for c in &full {
                    if expected.is_none_or(|b| c.at < b.at) {
                        expected = Some(*c);
                    }
                }
                assert_eq!(sl.next_completion(clock), expected);
            }
        };
        for (i, (solo, fbr, mem)) in jobs.into_iter().enumerate() {
            clock += SimDuration::from_millis(1.0);
            let slice_idx = i % gpu.slices().len();
            let s = spec(i as u64, solo, fbr, mem);
            let _ = gpu.slice_mut(slice_idx).admit(clock, s);
            check(&gpu, clock);
            // Periodically retire a slice's earliest projection, the way
            // the engine's single live event would.
            if i % finish_every == 0 {
                if let Some(c) = gpu.slice(slice_idx).next_completion(clock) {
                    clock = c.at;
                    gpu.slice_mut(slice_idx).finish(c.at, c.job).expect("live projection");
                    check(&gpu, clock);
                }
            }
        }
        // Drain: the earliest projection is always finishable.
        for idx in 0..gpu.slices().len() {
            while let Some(c) = gpu.slice(idx).next_completion(clock) {
                clock = clock.max(c.at);
                let c = gpu.slice(idx).next_completion(clock).expect("still resident");
                gpu.slice_mut(idx).finish(c.at.max(clock), c.job).expect("drain");
                clock = c.at.max(clock);
                check(&gpu, clock);
            }
        }
        prop_assert!(gpu.is_idle());
    }
}

#[test]
fn enumerated_geometries_build_working_gpus() {
    for geometry in Geometry::enumerate_all() {
        let mut gpu = Gpu::new(GpuId(0), geometry.clone(), SharingMode::Mps, SimTime::ZERO);
        // Each slice accepts a small job.
        for i in 0..gpu.slices().len() {
            gpu.slice_mut(i)
                .admit(SimTime::ZERO, spec(i as u64, 50.0, 0.1, 0.5))
                .unwrap_or_else(|e| panic!("{geometry}: slice {i}: {e}"));
        }
        assert!(!gpu.is_idle());
    }
}
