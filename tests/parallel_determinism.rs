//! The parallel harness must be a pure wall-clock optimisation: the
//! same grid run with 1 worker thread and with several yields
//! bit-identical `SchemeRow`s for every cell. Each cell owns its RNG
//! streams via `ClusterConfig::seed`, so no result may depend on
//! thread interleaving.

use protean_experiments::harness::{run_grid, run_parallel, GridCell};
use protean_experiments::{schemes, PaperSetup, SchemeRow};
use protean_models::ModelId;

/// Compares every metric the figures and tables read, bitwise for the
/// floats so "close enough" can never mask a nondeterminism bug.
fn assert_rows_identical(a: &SchemeRow, b: &SchemeRow, cell: usize) {
    assert_eq!(a.scheme, b.scheme, "cell {cell}: scheme label");
    let float_fields = [
        (
            "slo_compliance_pct",
            a.slo_compliance_pct,
            b.slo_compliance_pct,
        ),
        ("strict_p50_ms", a.strict_p50_ms, b.strict_p50_ms),
        ("strict_p99_ms", a.strict_p99_ms, b.strict_p99_ms),
        ("be_p50_ms", a.be_p50_ms, b.be_p50_ms),
        ("be_p99_ms", a.be_p99_ms, b.be_p99_ms),
        (
            "strict_throughput",
            a.strict_throughput,
            b.strict_throughput,
        ),
        ("total_throughput", a.total_throughput, b.total_throughput),
        ("gpu_util_pct", a.gpu_util_pct, b.gpu_util_pct),
        ("mem_util_pct", a.mem_util_pct, b.mem_util_pct),
        ("cost_usd", a.cost_usd, b.cost_usd),
    ];
    for (name, x, y) in float_fields {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "cell {cell}: {name} differs ({x} vs {y})"
        );
    }
    assert_eq!(a.evictions, b.evictions, "cell {cell}: evictions");
    assert_eq!(a.censored, b.censored, "cell {cell}: censored");
    assert_eq!(a.reconfigs, b.reconfigs, "cell {cell}: reconfigs");
}

#[test]
fn one_thread_and_many_threads_agree_on_every_cell() {
    let lineup = schemes::primary();
    // A grid that varies model AND seed, so cells genuinely differ and
    // an index mix-up between input and output order cannot cancel out.
    let mut cells = Vec::new();
    for (i, &model) in [ModelId::ResNet50, ModelId::MobileNet].iter().enumerate() {
        let setup = PaperSetup {
            duration_secs: 10.0,
            seed: 100 + i as u64,
        };
        for scheme in &lineup {
            cells.push(GridCell::new(
                setup.cluster(),
                scheme.as_ref(),
                setup.wiki_trace(model),
            ));
        }
    }

    let sequential = run_grid(&cells, 1);
    let parallel = run_grid(&cells, 4);
    assert_eq!(sequential.len(), cells.len());
    assert_eq!(parallel.len(), cells.len());
    for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
        assert_rows_identical(s, p, i);
    }
}

#[test]
fn run_parallel_preserves_input_order() {
    // Items finish in scrambled order on purpose (larger indices do
    // less work); the results must still come back in input order.
    let items: Vec<u64> = (0..64).collect();
    let doubled = run_parallel(&items, 8, |i, &x| {
        let spin = (64 - i as u64) * 1000;
        let mut acc = 0u64;
        for k in 0..spin {
            acc = acc.wrapping_add(k);
        }
        std::hint::black_box(acc);
        x * 2
    });
    assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
}

/// Grid-level and shard-level parallelism compose: a grid whose cells
/// each run the sharded engine (which spawns its own shard threads)
/// still returns bit-identical rows for any grid thread count, and the
/// shared thread budget means the composition cannot oversubscribe.
#[test]
fn sharded_cells_inside_a_parallel_grid_stay_deterministic() {
    let lineup = schemes::primary();
    let mut cells = Vec::new();
    for (i, scheme) in lineup.iter().enumerate() {
        let setup = PaperSetup {
            duration_secs: 10.0,
            seed: 300 + i as u64,
        };
        let mut config = setup.cluster();
        config.shards = 4;
        config.shard_threads = 2;
        cells.push(GridCell::new(
            config,
            scheme.as_ref(),
            setup.wiki_trace(ModelId::ResNet50),
        ));
    }
    let sequential = run_grid(&cells, 1);
    let parallel = run_grid(&cells, 8);
    for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
        assert_rows_identical(s, p, i);
    }
}

/// The invariant auditor runs with shards enabled: the per-shard
/// `DispatchIndex` views are chained through `verify_partition` into
/// the fleet sweep, and every shard count must report the sequential
/// run's sweep count with zero violations.
#[test]
fn audit_sweeps_stay_clean_and_counted_across_shard_counts() {
    use protean_cluster::run_simulation;
    let setup = PaperSetup {
        duration_secs: 15.0,
        seed: 9,
    };
    let mut config = setup.cluster();
    config.audit = true;
    let trace = setup.wiki_trace(ModelId::ResNet50);
    let scheme = protean::ProteanBuilder::paper();
    let baseline = run_simulation(&config, &scheme, &trace);
    assert!(baseline.audit.enabled);
    assert!(baseline.audit.checks > 0);
    assert!(baseline.audit.is_clean(), "{:?}", baseline.audit.violations);
    for shards in [2usize, 4, 8] {
        for threads in [1usize, 2] {
            let mut sharded = config.clone();
            sharded.shards = shards;
            sharded.shard_threads = threads;
            let r = run_simulation(&sharded, &scheme, &trace);
            assert!(
                r.audit.is_clean(),
                "shards={shards} threads={threads}: {:?}",
                r.audit.violations
            );
            assert_eq!(
                baseline.audit.checks, r.audit.checks,
                "shards={shards} threads={threads}: sweep cadence drifted"
            );
            assert_eq!(
                baseline.censored, r.censored,
                "shards={shards} threads={threads}"
            );
        }
    }
}
