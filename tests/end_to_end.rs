//! End-to-end integration tests spanning every crate: trace → cluster
//! → scheme → metrics, with accounting and determinism invariants.

use protean::ProteanBuilder;
use protean_baselines::Baseline;
use protean_cluster::{run_simulation, SchemeBuilder};
use protean_experiments::{run_scheme, PaperSetup};
use protean_metrics::record::Class;
use protean_models::{catalog, ModelId};
use protean_sim::{RngFactory, SimTime};

fn small_setup() -> PaperSetup {
    PaperSetup {
        duration_secs: 40.0,
        seed: 123,
    }
}

/// Every request arriving after the warmup is accounted for exactly
/// once — completed or censored — under every scheme.
#[test]
fn conservation_of_requests_across_schemes() {
    let setup = small_setup();
    let config = setup.cluster();
    let trace = setup.wiki_trace(ModelId::ResNet50);
    let factory = RngFactory::new(config.seed);
    let expected = trace
        .generate(&factory)
        .requests()
        .iter()
        .filter(|r| r.arrival >= SimTime::ZERO + config.warmup)
        .count();
    let lineup: Vec<Box<dyn SchemeBuilder>> = vec![
        Box::new(Baseline::MoleculeBeta),
        Box::new(Baseline::InflessLlama),
        Box::new(Baseline::NaiveSlicing),
        Box::new(Baseline::Gpulet),
        Box::new(ProteanBuilder::paper()),
    ];
    for scheme in lineup {
        let result = run_simulation(&config, scheme.as_ref(), &trace);
        assert_eq!(
            result.metrics.count(Class::All),
            expected,
            "scheme {} lost or duplicated requests",
            scheme.name()
        );
    }
}

/// Identical seeds reproduce identical results, bit for bit, through
/// the whole pipeline.
#[test]
fn full_pipeline_is_deterministic() {
    let setup = small_setup();
    let config = setup.cluster();
    let trace = setup.wiki_trace(ModelId::Vgg19);
    let a = run_scheme(&config, &ProteanBuilder::paper(), &trace);
    let b = run_scheme(&config, &ProteanBuilder::paper(), &trace);
    assert_eq!(a.slo_compliance_pct, b.slo_compliance_pct);
    assert_eq!(a.strict_p99_ms, b.strict_p99_ms);
    assert_eq!(a.cost_usd, b.cost_usd);
    assert_eq!(a.reconfigs, b.reconfigs);
    assert_eq!(
        a.result.metrics.count(Class::All),
        b.result.metrics.count(Class::All)
    );
}

/// A different seed changes the realised trace but not the accounting
/// invariants.
#[test]
fn different_seed_still_conserves() {
    let setup = PaperSetup {
        duration_secs: 40.0,
        seed: 999,
    };
    let config = setup.cluster();
    let trace = setup.wiki_trace(ModelId::MobileNet);
    let row = run_scheme(&config, &ProteanBuilder::paper(), &trace);
    assert!(row.result.metrics.count(Class::All) > 10_000);
    assert!(row.slo_compliance_pct > 50.0);
}

/// Latency breakdowns reconstruct the end-to-end latency: the sum of
/// components equals completion − arrival for every request.
#[test]
fn breakdown_components_sum_to_latency() {
    let setup = small_setup();
    let config = setup.cluster();
    let trace = setup.wiki_trace(ModelId::DenseNet121);
    let row = run_scheme(&config, &ProteanBuilder::paper(), &trace);
    for rec in row.result.metrics.records() {
        let latency_ms = rec.latency().as_millis_f64();
        let total = rec.breakdown.total_ms();
        assert!(
            (latency_ms - total).abs() < 0.51,
            "breakdown {total} != latency {latency_ms}"
        );
    }
}

/// The SLO function used in metrics matches the catalog contract.
#[test]
fn slo_deadlines_match_catalog() {
    let cat = catalog();
    for p in cat.profiles() {
        assert_eq!(p.slo(), p.slo_with_multiplier(3.0));
        assert!(p.slo() > p.solo_7g);
    }
}

/// Strict latencies recorded in the timeline agree with the metrics
/// set (both observe the same completions).
#[test]
fn timeline_and_metrics_agree_on_volume() {
    let setup = small_setup();
    let config = setup.cluster();
    let trace = setup.wiki_trace(ModelId::SeNet18);
    let row = run_scheme(&config, &ProteanBuilder::paper(), &trace);
    // One timeline sample per strict batch; strict requests / batch size
    // bounds the sample count from below (partial batches only add).
    let strict = row.result.metrics.count(Class::Strict);
    let batches = row.result.strict_latency_timeline.len();
    assert!(batches > 0);
    assert!(batches * 128 >= strict, "batches {batches} strict {strict}");
}

/// GPU utilization is consistent with load: strictly positive under
/// load and below 100%.
#[test]
fn utilization_is_sane() {
    let setup = small_setup();
    let config = setup.cluster();
    let trace = setup.wiki_trace(ModelId::EfficientNetB0);
    for scheme in [
        Box::new(Baseline::InflessLlama) as Box<dyn SchemeBuilder>,
        Box::new(ProteanBuilder::paper()),
    ] {
        let row = run_scheme(&config, scheme.as_ref(), &trace);
        assert!(
            row.gpu_util_pct > 1.0,
            "{}: {}",
            row.scheme,
            row.gpu_util_pct
        );
        assert!(row.gpu_util_pct <= 100.0);
        assert!(row.mem_util_pct > 0.1);
        assert!(row.mem_util_pct <= 100.0);
    }
}
