#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation, in
# order, writing each binary's output to results/<id>.txt.
#
# Usage: scripts/regenerate_all.sh [duration_secs] [seed]
#
# The grid-based binaries run their cells on the parallel harness;
# set PROTEAN_THREADS to pin the worker-thread count (defaults to the
# machine's available parallelism):
#
#   PROTEAN_THREADS=8 scripts/regenerate_all.sh 120 42
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${1:-120}"
SEED="${2:-42}"
OUT=results
mkdir -p "$OUT"

echo "threads: ${PROTEAN_THREADS:-auto (available parallelism)}"
START_EPOCH=$(date +%s)

cargo build --release -p protean-experiments
cargo build --release -p protean-cli

BINARIES=(
  fig02_motivation
  fig03_fbr_catalog
  fig04_architecture
  table2_mig_profiles
  table3_spot_pricing
  fig05_slo_vision
  fig06_latency_breakdown
  fig07_reconfig_timeline
  fig08_latency_cdf
  fig09_cost_slo
  fig10_throughput_util
  fig11_twitter
  fig12_vhi_llm
  fig13_gpt
  fig14_skewed_ratios
  table4_all_strict
  table5_all_be
  fig15_tight_slo
  fig16_gpulet
  fig17_oracle
  ablations
  sweep_load
  future_be_tail
)

# A binary that fails to build (or was renamed without updating this
# list) must abort the regeneration, not silently skip its artifact.
require_bin() {
  if [[ ! -x "./target/release/$1" ]]; then
    echo "FATAL: bench binary '$1' is missing from target/release/ — build failed or the binary was renamed" >&2
    exit 1
  fi
}

for bin in "${BINARIES[@]}" stats_significance harness_timing bench_pr3 bench_pr5 bench_pr6 bench_pr7 bench_pr8 bench_pr10; do
  require_bin "$bin"
done

for bin in "${BINARIES[@]}"; do
  echo ">>> $bin"
  ./target/release/"$bin" "$DURATION" "$SEED" >"$OUT/$bin.txt" 2>/dev/null
done

# stats_significance takes [duration_secs] [n_seeds].
echo ">>> stats_significance"
./target/release/stats_significance 60 10 >"$OUT/stats_significance.txt" 2>/dev/null

# Harness timing: sequential-vs-parallel wall-clock per grid, written
# to results/bench_pr1.json for the perf trajectory.
echo ">>> harness_timing"
./target/release/harness_timing 20 "$SEED" >"$OUT/harness_timing.txt" 2>/dev/null

# Event-scheduler cost accounting (next-completion-only vs all-jobs
# re-projection), written to results/bench_pr3.json.
echo ">>> bench_pr3"
./target/release/bench_pr3 20 "$SEED" >"$OUT/bench_pr3.txt" 2>/dev/null

# Fleet-scale dispatch sweep: linear-vs-indexed wall-clock and scan
# counters per fleet size, written to results/bench_pr5.json. Uses its
# own 150 s duration so the 512-worker cell crosses 1M requests.
echo ">>> bench_pr5"
./target/release/bench_pr5 150 "$SEED" >"$OUT/bench_pr5.txt" 2>/dev/null

# Descent-dispatch sweep to 8192 workers plus the billion-request
# streaming soak, written to results/bench_pr6.json. The heavy step:
# the soak alone streams 1e9 requests (~10 min); the sweep's 8192-cell
# linear baselines add a few more. Defaults: 30 s cells, fleets
# 8..8192, 1e9-request soak.
echo ">>> bench_pr6"
./target/release/bench_pr6 30 "$SEED" >"$OUT/bench_pr6.txt" 2>/dev/null

# Sharded-engine sweep (sequential vs S ∈ {2,4,8}, digest equality
# asserted on every cell) plus the sharded streaming soak with
# allocator accounting, written to results/bench_pr7.json. Wall-clock
# floors arm only on ≥4-core hosts with real cell durations.
echo ">>> bench_pr7"
./target/release/bench_pr7 30 "$SEED" >"$OUT/bench_pr7.txt" 2>/dev/null

# Epoch-coarsening differential (per-arrival vs coarsened arms, digest
# equality and the epochs-per-arrival floor asserted on every cell),
# written to results/bench_pr8.json.
echo ">>> bench_pr8"
./target/release/bench_pr8 30 "$SEED" >"$OUT/bench_pr8.txt" 2>/dev/null

# Window-expiry coalescing differential (knob off vs on, digest
# equality, the epochs-per-dispatch-event floor and shard-count
# invariance asserted on every cell) plus the 100k-worker planetary
# fleet streamed cell (1e8 requests, digest preflight, flat RSS +
# live-bytes asserted), written to results/bench_pr10.json.
echo ">>> bench_pr10"
./target/release/bench_pr10 30 "$SEED" >"$OUT/bench_pr10.txt" 2>/dev/null

# Adversarial scenario catalog at full rates: every scenario runs both
# engine arms (digest equality asserted) and writes a JSON report card
# per scenario to results/scenarios/.
echo ">>> scenario catalog"
require_bin protean-cli
./target/release/protean-cli scenario run --out "$OUT/scenarios" >"$OUT/scenarios.txt" 2>/dev/null

TOTAL=$(($(date +%s) - START_EPOCH))
echo "All outputs written to $OUT/"
echo "Total wall-clock: ${TOTAL}s"
